"""Minimal asyncio HTTP/1.1 plumbing for the characterization service.

The service speaks a deliberately tiny slice of HTTP: ``GET`` requests
with query strings, JSON response bodies, keep-alive connections.  That
slice is implemented here from the stdlib alone (``asyncio`` streams and
``urllib.parse``) so the long-running server adds **zero** dependencies —
the same constraint every other layer of the reproduction honours.

The split of responsibilities:

* :func:`read_request` parses one request off a stream into a frozen
  :class:`HttpRequest` (method, route, query, headers, body), raising
  :class:`HttpError` — which carries an HTTP status and a machine-readable
  error code — for anything malformed;
* :func:`render_response` serializes one JSON document with the correct
  ``Content-Length``/``Connection`` framing;
* routing, query validation and endpoint semantics live in
  :mod:`repro.service.service`, never here.

Hard limits (request-line/header size, header count, body size) bound the
memory one connection can pin, so thousands of concurrent clients — the
``bench_service.py`` load shape — cannot balloon the server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Longest accepted request line or header line, in bytes.
MAX_LINE_BYTES = 8192
#: Most headers accepted on one request.
MAX_HEADERS = 64
#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for every status the service emits.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level problem with one request.

    ``status`` is the HTTP status to answer with, ``code`` the stable
    machine-readable error identifier carried in the JSON error document
    (the service-level :class:`repro.service.service.ServiceError` uses
    the same ``(status, code, message)`` shape for endpoint errors).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)

    def document(self) -> Dict[str, Any]:
        """The structured JSON error body of this failure."""
        return error_document(self.status, self.code, self.message)


def error_document(status: int, code: str, message: str) -> Dict[str, Any]:
    """The service-wide error body shape: ``{"error": {...}}``."""
    return {
        "error": {
            "status": int(status),
            "code": str(code),
            "message": str(message),
        }
    }


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: the immutable input to a route handler."""

    method: str
    target: str
    route: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection (HTTP/1.1
        default; ``Connection: close`` opts out)."""
        return self.headers.get("connection", "").strip().lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """One CRLF-terminated line, bounded by :data:`MAX_LINE_BYTES`."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise HttpError(431, "line-too-long", f"request line exceeds limit: {exc}") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(431, "line-too-long", "request line exceeds limit")
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a cleanly closed
    connection (between requests), :class:`HttpError` on malformed input."""
    request_line = await _read_line(reader)
    if not request_line:
        return None  # client closed the idle connection
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed-request-line", "expected 'METHOD target HTTP/1.x'")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "unsupported-protocol", f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "truncated-headers", "connection closed inside headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, "malformed-header", f"header line without ':': {line!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > MAX_HEADERS:
            raise HttpError(431, "too-many-headers", f"more than {MAX_HEADERS} headers")

    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, "malformed-body", f"Content-Length {raw_length!r} is not an integer") from None
    if length < 0:
        raise HttpError(400, "malformed-body", "Content-Length cannot be negative")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "body-too-large", f"body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated-body", "connection closed inside the body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        target=target,
        route=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(status: int, document: Dict[str, Any], keep_alive: bool = True) -> bytes:
    """Serialize one JSON response with correct framing.

    Documents are emitted compact and key-sorted so responses are a pure,
    byte-stable function of their content (the same discipline the CLI's
    ``--json`` documents follow, minus the wall-clock ``timing`` block that
    only `/stats` carries, clearly labelled).
    """
    body = json.dumps(document, separators=(",", ":"), sort_keys=True).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


#: Content type of the Prometheus text exposition format (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_text_response(
    status: int,
    text: str,
    keep_alive: bool = True,
    content_type: str = PROMETHEUS_CONTENT_TYPE,
) -> bytes:
    """Serialize one plain-text response (the ``/metrics`` exposition)."""
    body = text.encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


__all__ = [
    "HttpError",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADERS",
    "MAX_LINE_BYTES",
    "PROMETHEUS_CONTENT_TYPE",
    "STATUS_REASONS",
    "error_document",
    "read_request",
    "render_response",
    "render_text_response",
]
