"""Run a service on a background event-loop thread (tests and benchmarks).

Pytest's synchronous tests and the benchmark driver both need a *running*
server whose lifetime brackets a block of client code.  This helper owns
the whole dance: spin up an event loop on a daemon thread, bind the app on
an ephemeral port, publish the address once it is accepting connections,
and tear everything down — server, loop, engine pool — on exit.

    with BackgroundServer(app) as server:
        ...  # connect clients to server.host / server.port

Production deployments do not use this module; ``repro-undervolt serve``
runs the loop in the foreground of its own process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .service import ServiceApp, start_service

#: How long to wait for the loop thread to come up or drain, in seconds.
STARTUP_TIMEOUT_S = 30.0


class BackgroundServer:
    """Context manager owning one server on its own event-loop thread."""

    def __init__(self, app: ServiceApp, host: str = "127.0.0.1") -> None:
        self.app = app
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="fleet-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(STARTUP_TIMEOUT_S):
            raise RuntimeError("background service did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("background service failed to bind") from self._startup_error
        return self

    def __exit__(self, *_exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(STARTUP_TIMEOUT_S)
        self.app.service.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        try:
            server = await start_service(self.app, host=self.host, port=0)
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Keep-alive handlers idle in read_request until their client
            # hangs up; cancel them so the loop drains instead of dying
            # with pending tasks.
            current = asyncio.current_task()
            lingering = [task for task in asyncio.all_tasks() if task is not current]
            for task in lingering:
                task.cancel()
            if lingering:
                await asyncio.gather(*lingering, return_exceptions=True)


__all__ = ["BackgroundServer", "STARTUP_TIMEOUT_S"]
