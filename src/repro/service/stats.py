"""Per-endpoint latency/QPS accounting for the characterization service.

The service's ``/stats`` endpoint answers two different questions and this
module owns the first: *how is the HTTP surface behaving* (request counts,
error counts, latency percentiles, sustained QPS per endpoint).  The
second — *how hard is the evaluation backend working* — is answered by the
engines' shared :class:`repro.exec.EngineCounters`, which ``/stats`` simply
mirrors the way the CLI's ``backend`` blocks do.

Concurrency note: unlike ``EngineCounters`` (incremented from worker
threads, hence locked), every update here happens on the service's single
asyncio event loop, so plain attribute updates are already serialized and
no lock is taken.  Latency percentiles are computed over a bounded ring of
recent samples (:data:`LATENCY_RING_SIZE`) so a long-lived server's memory
stays flat no matter how many requests it absorbs.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict

#: Recent latency samples kept per endpoint for percentile estimates.
LATENCY_RING_SIZE = 4096

#: Percentiles reported per endpoint, as (label, fraction).
PERCENTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


def _percentile(ordered: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


class EndpointStats:
    """Counters and a latency ring for one route."""

    __slots__ = ("n_requests", "n_errors", "total_latency_s", "latencies_s")

    def __init__(self) -> None:
        self.n_requests = 0
        self.n_errors = 0
        self.total_latency_s = 0.0
        self.latencies_s: Deque[float] = deque(maxlen=LATENCY_RING_SIZE)

    def record(self, latency_s: float, ok: bool) -> None:
        """Account one finished request."""
        self.n_requests += 1
        if not ok:
            self.n_errors += 1
        self.total_latency_s += latency_s
        self.latencies_s.append(latency_s)

    @property
    def ring_occupancy(self) -> int:
        """Latency samples currently held (ring warm-up vs steady state)."""
        return len(self.latencies_s)

    def to_dict(self, uptime_s: float) -> Dict[str, Any]:
        """JSON form: counts, mean/percentile latencies (ms), sustained QPS.

        An endpoint with no latency samples reports explicit ``null``
        percentiles and mean — a 0.0 would be indistinguishable from a
        genuinely sub-millisecond endpoint to a scraper.  ``ring_occupancy``
        tells warm-up (< :data:`LATENCY_RING_SIZE`) from steady state.
        """
        document: Dict[str, Any] = {
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "qps": round(self.n_requests / uptime_s, 3) if uptime_s > 0 else 0.0,
            "mean_ms": (
                round(1000.0 * self.total_latency_s / self.n_requests, 3)
                if self.n_requests
                else None
            ),
            "ring_occupancy": self.ring_occupancy,
        }
        ordered = sorted(self.latencies_s)
        for label, fraction in PERCENTILES:
            document[label] = (
                round(1000.0 * _percentile(ordered, fraction), 3) if ordered else None
            )
        return document


class ServiceStats:
    """All endpoints' stats plus service uptime."""

    def __init__(self) -> None:
        self._started = time.monotonic()
        self._endpoints: Dict[str, EndpointStats] = {}

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def record(self, endpoint: str, latency_s: float, ok: bool) -> None:
        """Account one finished request against its route."""
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = EndpointStats()
        stats.record(latency_s, ok)

    def to_dict(self) -> Dict[str, Any]:
        """The ``service`` block of the ``/stats`` document."""
        uptime = self.uptime_s
        return {
            "uptime_s": round(uptime, 3),
            "n_requests": sum(s.n_requests for s in self._endpoints.values()),
            "n_errors": sum(s.n_errors for s in self._endpoints.values()),
            "endpoints": {
                route: stats.to_dict(uptime)
                for route, stats in sorted(self._endpoints.items())
            },
        }


__all__ = ["LATENCY_RING_SIZE", "PERCENTILES", "EndpointStats", "ServiceStats"]
