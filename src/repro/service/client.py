"""A minimal keep-alive asyncio client for the characterization service.

The load shapes this repo cares about — thousands of concurrent governor
daemons polling ``/v1/safe-vmin``, the coalescing property test firing N
identical queries in one instant — need a client that (a) holds one
persistent connection per simulated client and (b) costs nothing beyond
the stdlib.  :class:`ServiceClient` is that: open once, ``get`` many times,
close.  It speaks exactly the protocol subset the server emits
(``Content-Length``-framed JSON responses).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Tuple


class ClientError(RuntimeError):
    """Raised when the server's response cannot be framed or parsed."""


class ServiceClient:
    """One persistent HTTP/1.1 connection to a running service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *_exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None

    async def get(self, target: str) -> Tuple[int, Dict[str, Any]]:
        """One request/response round trip on the persistent connection.

        Returns ``(status, document)``; service errors come back as their
        structured JSON documents, not exceptions — asserting on them is
        the caller's job.
        """
        if self._reader is None or self._writer is None:
            raise ClientError("client is not connected; call connect() first")
        await self._send(target, accept="application/json")
        return await self._read_response()

    async def get_text(self, target: str) -> Tuple[int, str]:
        """One round trip returning the raw body as text (``/metrics``)."""
        if self._reader is None or self._writer is None:
            raise ClientError("client is not connected; call connect() first")
        await self._send(target, accept="text/plain")
        status, body = await self._read_raw()
        return status, body.decode("utf-8")

    async def _send(self, target: str, accept: str) -> None:
        assert self._writer is not None
        self._writer.write(
            (
                f"GET {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Accept: {accept}\r\n"
                f"\r\n"
            ).encode("latin-1")
        )
        await self._writer.drain()

    async def _read_response(self) -> Tuple[int, Dict[str, Any]]:
        status, body = await self._read_raw(default_body=b"{}")
        try:
            return status, json.loads(body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ClientError(f"response body is not JSON: {exc}") from exc

    async def _read_raw(self, default_body: bytes = b"") -> Tuple[int, bytes]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ClientError("connection closed before a status line arrived")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ClientError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ClientError("connection closed inside response headers")
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await self._reader.readexactly(length) if length else default_body
        return status, body


async def fetch_json(host: str, port: int, target: str) -> Tuple[int, Dict[str, Any]]:
    """One-shot convenience: connect, GET, close."""
    async with ServiceClient(host, port) as client:
        return await client.get(target)


__all__ = ["ClientError", "ServiceClient", "fetch_json"]
