"""Command-line interface to the reproduction's main experiments.

Installed as the ``repro-undervolt`` console script (``repro`` is kept as a
shorter alias).  Five sub-commands cover the workflows a user typically wants
without writing Python:

* ``guardband``     — Fig. 1: discover Vmin/Vcrash and the guardband of a board;
* ``sweep``         — Fig. 3 / Listing 1: fault rate and power across the
  critical region;
* ``characterize``  — Section II-C: pattern, stability and variability studies;
* ``icbp``          — Section III: train the case-study network, run it at
  Vcrash under the default and ICBP placements and compare the accuracy loss;
* ``campaign``      — fleet-scale populations of simulated boards: ``run``,
  ``status`` and ``report`` over a declarative campaign spec
  (:mod:`repro.campaign`, see ``docs/campaigns.md``);
* ``runtime``       — closed-loop runtime undervolting: ``run`` a governed
  fleet through a workload trace and ``report`` saved telemetry
  (:mod:`repro.runtime`, see ``docs/runtime.md``);
* ``trace``         — ``summarize`` an observability trace file written by
  ``--obs-trace`` into a per-phase wall/self-time table
  (:mod:`repro.obs`, see ``docs/observability.md``).

The long-running commands (``guardband``, ``sweep``, ``campaign run``,
``runtime run``, ``serve``) accept ``--obs-trace PATH`` (JSON-lines span
trace of the run) and ``--obs-metrics PATH`` (Prometheus text exposition
written when the command finishes).  Both default to off, and off is free —
the ``--json`` documents are byte-identical either way.

Every single-board command accepts ``--platform`` (default VC707) and prints
aligned ASCII tables; machine-readable output is available with ``--json``.
Every ``--json`` document segregates its wall-clock measurements under a
single ``timing`` key (at least ``wall_s``), so the rest of each document is
a pure function of the inputs and seeds — golden-structure tests compare it
exactly.  The full reference, including each ``--json`` document schema,
lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.analysis import render_table, similarity_extremes
from repro.campaign import (
    CampaignError,
    CampaignSpec,
    DEFAULT_ROOT,
    build_report,
    migrate_store,
    open_store,
    preset_spec,
    run_campaign,
)
from repro.exec import ExecError, ExecutionEngine, ReplayBackend, SCHEDULERS
from repro.search import SEARCH_MODES, EvalCache, merge_search_documents
from repro.core import cached_fault_field
from repro.core.characterization import (
    STUDY_PATTERNS,
    pattern_study,
    stability_study,
    variability_study,
)
from repro.fpga import FpgaChip, platform_names
from repro.harness import UndervoltingExperiment
from repro.runtime.governor import POLICY_NAMES
from repro.runtime.workload import TRACE_KINDS


#: Wall-clock start of the current command, set by :func:`main`.  Every
#: ``--json`` document routes through :func:`_emit_json`, which appends the
#: elapsed time under the single ``timing`` key — the one place wall-clock
#: (non-deterministic) values are allowed to appear.
_COMMAND_T0: Optional[float] = None


def _emit_json(document: Dict[str, Any], **extra_timing: float) -> None:
    """Print a ``--json`` document with its segregated ``timing`` block."""
    timing: Dict[str, float] = {}
    if _COMMAND_T0 is not None:
        timing["wall_s"] = round(time.perf_counter() - _COMMAND_T0, 6)
    timing.update(extra_timing)
    document["timing"] = timing
    print(json.dumps(document, indent=2))


def _add_platform_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--platform",
        default="VC707",
        choices=platform_names(),
        help="board to simulate (Table I of the paper)",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON document instead of ASCII tables",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags of the long-running commands.

    ``--obs-trace`` installs a JSON-lines span recorder for the whole
    command; ``--obs-metrics`` switches the process-wide metrics registry
    on and dumps its Prometheus text exposition when the command returns.
    Both are off by default, and off is free (see docs/observability.md).
    """
    parser.add_argument(
        "--obs-trace",
        metavar="PATH",
        help="append a JSON-lines span trace of this command to PATH "
        "(inspect it with 'repro-undervolt trace summarize PATH')",
    )
    parser.add_argument(
        "--obs-metrics",
        metavar="PATH",
        help="collect metrics during this command and write the Prometheus "
        "text exposition to PATH on exit",
    )


def _add_search_argument(parser: argparse.ArgumentParser, default: Optional[str]) -> None:
    parser.add_argument(
        "--search",
        choices=list(SEARCH_MODES),
        default=default,
        help=(
            "characterization search mode: 'adaptive' finds thresholds by "
            "certified bisection (provably grid-identical, far fewer "
            "fault-field evaluations), 'exhaustive' walks every grid point"
        ),
    )


def _add_sim_core_arguments(
    parser: argparse.ArgumentParser, jobs_flag: bool = True
) -> None:
    """The fleet-simulation core knobs: ``--sim-core`` and ``--sim-jobs``.

    Choices mirror :data:`repro.runtime.simulator.SIM_CORES` (spelled out
    here so parser construction stays clear of the NN/accelerator import
    chain).  Both cores produce bit-identical telemetry; ``stepped`` is
    the reference loop kept as the event core's identity oracle.
    """
    parser.add_argument(
        "--sim-core",
        choices=["event", "stepped"],
        default="event",
        help="fleet-simulation core: the discrete-event core (default) or "
        "the stepped reference loop (bit-identical, slower)",
    )
    if jobs_flag:
        parser.add_argument(
            "--sim-jobs",
            type=int,
            default=1,
            metavar="N",
            help="shard the event core's per-die walks over N worker "
            "processes (telemetry digests are identical for any N)",
        )


def _add_backend_arguments(
    parser: argparse.ArgumentParser,
    default: str = "serial",
    replay: bool = False,
    batch_flag: bool = False,
) -> None:
    """The execution-layer knobs: ``--backend`` and ``--jobs``.

    ``serial``/``thread``/``process`` pick the scheduling substrate of the
    simulated backend (results are bit-identical across all three; see
    docs/architecture.md); ``replay``, where offered, serves every
    evaluation from a recorded store instead of the fault model.
    ``batch_flag`` additionally offers ``--no-batch``, which disables
    cross-request batching in the execution engine — results are
    bit-identical either way (see docs/batched_eval.md), so the flag
    exists for A/B verification and crossing-count comparisons.
    """
    choices = list(SCHEDULERS) + (["replay"] if replay else [])
    parser.add_argument(
        "--backend",
        choices=choices,
        default=default,
        help=(
            "execution backend: scheduling substrate of the simulated fault "
            "model" + (", or bit-identical replay from a recorded store "
                       "(--replay-store)" if replay else "")
        ),
    )
    jobs_flags = ["--jobs"] + (["--workers"] if default == "process" else [])
    parser.add_argument(
        *jobs_flags,
        dest="jobs",
        type=int,
        default=None,
        help="worker threads/processes for the parallel backends "
        "(default: CPU count when --backend is thread/process, else 1)",
    )
    if batch_flag:
        parser.add_argument(
            "--no-batch",
            dest="batch",
            action="store_false",
            default=True,
            help="disable batched backend evaluation (one engine->backend "
            "crossing per request; bit-identical, slower)",
        )
    if replay:
        parser.add_argument(
            "--replay-store",
            metavar="PATH",
            help="recorded evaluation store (a --record-store file or a "
            "campaign store directory) served by --backend replay",
        )
        parser.add_argument(
            "--record-store",
            metavar="PATH",
            help="write this run's evaluation cache to PATH for later "
            "--backend replay runs (needs --search adaptive)",
        )


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro-undervolt`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-undervolt",
        description="FPGA BRAM undervolting experiments (MICRO 2018 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    guardband = subparsers.add_parser("guardband", help="discover Vmin/Vcrash (Fig. 1)")
    _add_platform_argument(guardband)
    _add_json_argument(guardband)
    _add_search_argument(guardband, default="adaptive")
    _add_backend_arguments(guardband, replay=True, batch_flag=True)
    _add_obs_arguments(guardband)
    guardband.add_argument(
        "--runs",
        type=int,
        default=3,
        help="read-back repetitions per probe (default 3; match the "
        "recording's runs_per_step when replaying a campaign store)",
    )

    sweep = subparsers.add_parser("sweep", help="critical-region fault/power sweep (Fig. 3)")
    _add_platform_argument(sweep)
    _add_json_argument(sweep)
    _add_search_argument(sweep, default="adaptive")
    _add_backend_arguments(sweep, replay=True, batch_flag=True)
    _add_obs_arguments(sweep)
    sweep.add_argument("--runs", type=int, default=11, help="read-back repetitions per voltage step")
    sweep.add_argument("--pattern", default="FFFF", help="initial BRAM data pattern (e.g. FFFF, AAAA)")

    characterize = subparsers.add_parser(
        "characterize", help="pattern/stability/variability studies (Section II-C)"
    )
    _add_platform_argument(characterize)
    _add_json_argument(characterize)
    characterize.add_argument("--runs", type=int, default=50, help="runs for the stability study")

    icbp = subparsers.add_parser("icbp", help="NN case study with ICBP mitigation (Fig. 14)")
    _add_platform_argument(icbp)
    _add_json_argument(icbp)
    icbp.add_argument("--train-samples", type=int, default=6000, help="training-set size")
    icbp.add_argument("--seeds", type=int, default=4, help="number of place-and-route seeds to average")

    campaign = subparsers.add_parser(
        "campaign", help="fleet-scale campaigns over populations of boards"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_common(sub: argparse.ArgumentParser, need_spec: bool) -> None:
        sub.add_argument(
            "--root",
            default=DEFAULT_ROOT,
            help="directory campaign result stores live under (default: campaigns/)",
        )
        sub.add_argument(
            "--spec", metavar="PATH", help="campaign spec JSON file (see docs/campaigns.md)"
        )
        sub.add_argument(
            "--preset",
            metavar="NAME",
            help="built-in campaign: fleet16, fleet16-fvm, fleet16-sweep "
            "or fleet16-fast",
        )
        if not need_spec:
            sub.add_argument(
                "--name", help="name of an existing campaign (reads its manifest)"
            )
        _add_json_argument(sub)

    run = campaign_sub.add_parser("run", help="run (or resume) a campaign")
    _add_campaign_common(run, need_spec=True)
    _add_search_argument(run, default=None)  # None: honour the spec's knob
    _add_backend_arguments(run, default="process")
    _add_obs_arguments(run)
    run.add_argument(
        "--no-processes",
        action="store_true",
        help="execute serially in this process (legacy alias for "
        "--backend serial)",
    )
    run.add_argument(
        "--store-version",
        type=int,
        choices=(1, 2),
        default=None,
        help="on-disk layout for a fresh campaign: 1 (per-unit files, the "
        "default) or 2 (segmented columnar; see docs/campaign_store.md). "
        "An existing store keeps its version",
    )

    status = campaign_sub.add_parser("status", help="progress of a campaign on disk")
    _add_campaign_common(status, need_spec=False)

    report = campaign_sub.add_parser(
        "report", help="aggregate a campaign into fleet statistics"
    )
    _add_campaign_common(report, need_spec=False)

    migrate = campaign_sub.add_parser(
        "migrate",
        help="convert a v1 campaign store to the v2 columnar layout "
        "(idempotent, digest-verified)",
    )
    _add_campaign_common(migrate, need_spec=False)
    migrate.add_argument(
        "--keep-v1",
        action="store_true",
        help="keep the original v1 store as <name>.v1-backup next to the "
        "migrated store",
    )

    runtime = subparsers.add_parser(
        "runtime", help="closed-loop runtime undervolting on a serving fleet"
    )
    runtime_sub = runtime.add_subparsers(dest="runtime_command", required=True)

    run_rt = runtime_sub.add_parser(
        "run", help="serve a workload trace under one or all governor policies"
    )
    _add_platform_argument(run_rt)
    _add_json_argument(run_rt)
    _add_backend_arguments(run_rt)
    _add_obs_arguments(run_rt)
    run_rt.add_argument(
        "--chips", type=int, default=4, help="fleet size when characterizing inline"
    )
    run_rt.add_argument(
        "--campaign",
        metavar="NAME",
        help="take the fleet's characterizations from this campaign's store "
        "(guardband sweep) instead of characterizing inline",
    )
    run_rt.add_argument(
        "--root",
        default=DEFAULT_ROOT,
        help="campaign store root used with --campaign (default: campaigns/)",
    )
    run_rt.add_argument(
        "--policy",
        choices=list(POLICY_NAMES) + ["all"],
        default="all",
        help="governor policy to simulate ('all' compares every policy)",
    )
    run_rt.add_argument(
        "--trace",
        choices=list(TRACE_KINDS),
        default="diurnal",
        help="workload trace family (see docs/runtime.md)",
    )
    run_rt.add_argument("--steps", type=int, default=400, help="simulation steps")
    run_rt.add_argument("--seed", type=int, default=7, help="trace seed")
    run_rt.add_argument(
        "--capacity-rps",
        type=float,
        default=150.0,
        help="per-chip serving capacity in requests per second",
    )
    run_rt.add_argument(
        "--train-samples",
        type=int,
        default=500,
        help="training-set size of the served network",
    )
    run_rt.add_argument(
        "--no-icbp",
        action="store_true",
        help="compile the accelerators with the default placement instead of ICBP",
    )
    run_rt.add_argument(
        "--save",
        metavar="PATH",
        help="write the run's full telemetry document to this JSON file "
        "(readable by 'runtime report')",
    )
    _add_sim_core_arguments(run_rt)

    scale_rt = runtime_sub.add_parser(
        "scale",
        help="population-scale governor comparison on a synthetic die fleet",
    )
    _add_platform_argument(scale_rt)
    _add_json_argument(scale_rt)
    _add_backend_arguments(scale_rt)
    scale_rt.add_argument(
        "--dies", type=int, default=10_000, help="synthetic fleet size"
    )
    scale_rt.add_argument(
        "--fleet-seed",
        type=int,
        default=2026,
        help="seed of the calibrated population draw",
    )
    scale_rt.add_argument(
        "--policy",
        choices=list(POLICY_NAMES) + ["all"],
        default="all",
        help="governor policy to simulate ('all' compares every policy)",
    )
    scale_rt.add_argument(
        "--trace",
        choices=list(TRACE_KINDS),
        default="sparse-diurnal",
        help="workload trace family (see docs/runtime.md)",
    )
    scale_rt.add_argument(
        "--steps", type=int, default=720, help="simulation steps"
    )
    scale_rt.add_argument("--seed", type=int, default=7, help="trace seed")
    scale_rt.add_argument(
        "--capacity-rps",
        type=float,
        default=150.0,
        help="per-die serving capacity in requests per second",
    )
    scale_rt.add_argument(
        "--load-scale",
        type=float,
        default=None,
        metavar="X",
        help="multiply the trace's fleet-wide request rates by X "
        "(default: dies/16, keeping per-die load at the 16-chip "
        "study's level)",
    )
    _add_sim_core_arguments(scale_rt, jobs_flag=False)

    report_rt = runtime_sub.add_parser(
        "report", help="summarize a saved runtime telemetry document"
    )
    _add_json_argument(report_rt)
    report_rt.add_argument(
        "--telemetry", metavar="PATH", required=True,
        help="telemetry document written by 'runtime run --save'",
    )

    serve = subparsers.add_parser(
        "serve",
        help="characterization-as-a-service: HTTP/JSON fleet query API "
        "(see docs/service.md)",
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument(
        "--store",
        metavar="NAME",
        help="completed guardband campaign store to serve",
    )
    serve_source.add_argument(
        "--bundle",
        metavar="PATH",
        help="emitted governor_bundle.json to serve directly",
    )
    serve.add_argument(
        "--root",
        default=DEFAULT_ROOT,
        metavar="DIR",
        help="campaign store root directory (with --store)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 picks an ephemeral port (the bound address is "
        "printed on the ready line either way)",
    )
    serve.add_argument(
        "--engine-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker threads for engine-backed queries (FVM sweeps)",
    )
    serve.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        default=True,
        help="serve FVM ladders one engine->backend crossing per voltage "
        "instead of one batched kernel call (bit-identical, slower)",
    )
    _add_obs_arguments(serve)

    trace = subparsers.add_parser(
        "trace",
        help="inspect observability trace files written by --obs-trace",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-phase wall/self-time table of a JSON-lines trace file",
    )
    summarize.add_argument(
        "path", metavar="PATH", help="trace file written by --obs-trace"
    )
    _add_json_argument(summarize)

    return parser


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _search_payload(search_documents: List[dict], mode: str) -> dict:
    """The ``search`` block of a ``--json`` document: mode + evaluation cost.

    Totals come from :func:`repro.search.merge_search_documents` — the same
    aggregation the campaign reports use — trimmed to the three count keys
    the CLI schema publishes.
    """
    totals = merge_search_documents(search_documents)
    return {
        "mode": mode,
        "n_evaluations": totals["n_evaluations"],
        "n_cache_hits": totals["n_cache_hits"],
        "n_exhaustive_equivalent": totals["n_exhaustive_equivalent"],
    }


def _backend_block(
    kind: str, scheduler: str, jobs: int, source: Optional[str] = None
) -> Dict[str, Any]:
    """A counterless ``backend`` --json block.

    Commands whose evaluations happen outside this process (campaign
    workers, per-die characterization tasks) publish the engine identity
    without counters; in-process commands use
    :meth:`repro.exec.ExecutionEngine.describe` instead, which fills the
    same schema with live counters.
    """
    return {
        "kind": kind,
        "scheduler": scheduler,
        "jobs": jobs,
        "source": source,
        "counters": None,
    }


def _resolved_jobs(args: argparse.Namespace) -> int:
    """The worker count ``--jobs`` resolves to.

    A parallel backend without an explicit ``--jobs`` gets one worker per
    CPU — asking for ``--backend thread`` must never silently run serial.
    """
    if args.jobs is not None:
        if args.jobs < 1:
            raise ExecError("--jobs must be at least 1")
        return args.jobs
    if args.backend in ("thread", "process"):
        return os.cpu_count() or 1
    return 1


def _single_board_experiment(
    args: argparse.Namespace, runs_per_step: int
) -> UndervoltingExperiment:
    """The experiment a single-board command drives, honouring ``--backend``.

    ``serial``/``thread``/``process`` configure the simulated engine's
    scheduler; ``replay`` swaps the backend for a
    :class:`~repro.exec.ReplayBackend` over ``--replay-store``.
    """
    chip = FpgaChip.build(args.platform)
    batch = getattr(args, "batch", True)
    if args.backend == "replay":
        if not args.replay_store:
            raise ExecError("--backend replay needs --replay-store PATH")
        backend = ReplayBackend.open(
            args.replay_store, platform=chip.name, serial=chip.spec.serial_number
        )
        return UndervoltingExperiment(
            chip,
            runs_per_step=runs_per_step,
            engine=ExecutionEngine(backend, batch=batch),
        )
    return UndervoltingExperiment(
        chip,
        runs_per_step=runs_per_step,
        scheduler=args.backend,
        jobs=_resolved_jobs(args),
        batch=batch,
    )


def _record_cache(
    args: argparse.Namespace, experiment: UndervoltingExperiment
) -> Optional[EvalCache]:
    """The recording cache of ``--record-store``, if requested."""
    if not getattr(args, "record_store", None):
        return None
    if args.search != "adaptive":
        raise ExecError(
            "--record-store records the evaluation cache, which only the "
            "adaptive search path maintains; drop --search exhaustive"
        )
    return EvalCache(
        platform=experiment.chip.name,
        serial=experiment.chip.spec.serial_number,
    )


def _write_record_store(args: argparse.Namespace, cache: Optional[EvalCache]) -> None:
    """Persist a recording cache as a replayable store document."""
    if cache is None:
        return
    Path(args.record_store).write_text(
        json.dumps(cache.to_document(), indent=2, sort_keys=True) + "\n"
    )


def _backend_footer(experiment: UndervoltingExperiment) -> str:
    """One human-readable line describing the engine that served a command."""
    block = experiment.engine.describe()
    counters = block["counters"]
    return (
        f"  * backend: {block['kind']} ({block['scheduler']} x{block['jobs']}): "
        f"{counters['n_backend_evaluations']} backend evaluations, "
        f"{counters['n_cache_hits']} cache hits"
    )


def _cmd_guardband(args: argparse.Namespace) -> int:
    experiment = _single_board_experiment(args, runs_per_step=args.runs)
    cache = _record_cache(args, experiment)
    payload = {}
    search_documents: List[dict] = []
    for rail in ("VCCBRAM", "VCCINT"):
        # Pattern "FFFF" spells the stored image the way campaign units do,
        # so campaign stores double as replay sources for this command (the
        # bit image is identical to the library default 0xFFFF).
        if args.search == "adaptive":
            # No cross-rail cache sharing happens either way: keys include
            # the rail, and within one rail the two bisections already
            # share probes internally.  A --record-store cache rides along
            # purely to capture the probes for later replay.
            measurement = experiment.discover_guardband_adaptive(
                rail=rail, pattern="FFFF", probe_runs=args.runs, cache=cache
            ).measurement
        else:
            measurement, _ = experiment.discover_guardband(
                rail=rail, pattern="FFFF", probe_runs=args.runs
            )
        search_documents.append(experiment.last_search_report.to_dict())
        payload[rail] = {
            "vnom_v": measurement.nominal_v,
            "vmin_v": measurement.vmin_v,
            "vcrash_v": measurement.vcrash_v,
            "guardband_fraction": measurement.guardband_fraction,
            "power_reduction_factor_at_vmin": measurement.power_reduction_factor_at_vmin,
        }
    _write_record_store(args, cache)
    search = _search_payload(search_documents, args.search)
    if args.json:
        _emit_json({
            "platform": args.platform,
            "rails": payload,
            "search": search,
            "backend": experiment.engine.describe(),
        })
        return 0
    rows = [
        (rail, data["vnom_v"], data["vmin_v"], data["vcrash_v"],
         100 * data["guardband_fraction"], data["power_reduction_factor_at_vmin"])
        for rail, data in payload.items()
    ]
    print(render_table(
        ["rail", "Vnom", "Vmin", "Vcrash", "guardband %", "power x at Vmin"],
        rows,
        title=f"Voltage guardbands of {args.platform} (Fig. 1)",
    ))
    print(
        f"  * {args.search} search: {search['n_evaluations']} fault-field "
        f"evaluations ({search['n_exhaustive_equivalent']} exhaustive-equivalent)"
    )
    print(_backend_footer(experiment))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    experiment = _single_board_experiment(args, runs_per_step=args.runs)
    chip = experiment.chip
    cache = _record_cache(args, experiment)
    if cache is None and args.search == "adaptive":
        cache = EvalCache(platform=chip.name, serial=chip.spec.serial_number)
    result = experiment.critical_region_sweep(
        pattern=args.pattern, n_runs=args.runs, cache=cache
    )
    if getattr(args, "record_store", None):
        _write_record_store(args, cache)
    series = result.as_series()
    if args.json:
        _emit_json({
            "platform": args.platform,
            "pattern": args.pattern,
            "search": _search_payload(
                [experiment.last_search_report.to_dict()], args.search
            ),
            "backend": experiment.engine.describe(),
            "points": [
                {"vccbram_v": v, "faults_per_mbit": rate, "bram_power_w": power}
                for v, rate, power in series
            ],
        })
        return 0
    print(render_table(
        ["VCCBRAM (V)", "faults per Mbit", "BRAM power (W)"],
        series,
        title=f"Critical-region sweep of {args.platform}, pattern {args.pattern} (Fig. 3)",
    ))
    print(_backend_footer(experiment))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    chip = FpgaChip.build(args.platform)
    field = cached_fault_field(chip)
    vcrash = field.calibration.vcrash_bram_v
    patterns = pattern_study(field, vcrash, patterns=STUDY_PATTERNS)
    stability = stability_study(field, vcrash, n_runs=max(2, args.runs))
    variability = variability_study(field, vcrash)
    payload = {
        "platform": args.platform,
        "vcrash_v": vcrash,
        "pattern_rates_per_mbit": patterns.rates_per_mbit,
        "stability": stability.as_table_row(),
        "location_overlap": stability.location_overlap,
        "variability": {
            "max_percent": variability.max_percent,
            "mean_percent": variability.mean_percent,
            "never_faulty_fraction": variability.never_faulty_fraction,
        },
    }
    if args.json:
        _emit_json(payload)
        return 0
    print(render_table(
        ["pattern", "faults per Mbit"],
        [(name, patterns.rate(name)) for name in STUDY_PATTERNS],
        title=f"Data-pattern study of {args.platform} at {vcrash:.2f} V (Fig. 4)",
    ))
    print()
    print(render_table(
        ["metric", "value"],
        list(stability.as_table_row().items()) + [("location overlap", stability.location_overlap)],
        title=f"Stability over {stability.n_runs} runs (Table II)",
    ))
    print()
    print(render_table(
        ["metric", "value"],
        [
            ("max per-BRAM rate (%)", variability.max_percent),
            ("mean per-BRAM rate (%)", variability.mean_percent),
            ("never-faulty BRAMs (%)", 100 * variability.never_faulty_fraction),
        ],
        title="Per-BRAM variability (Fig. 5)",
    ))
    return 0


def _cmd_icbp(args: argparse.Namespace) -> int:
    # Imported lazily: the NN stack is only needed for this sub-command.
    from repro.accelerator import IcbpFlow, PlacementPolicy
    from repro.nn import QuantizedNetwork, SCALED_TOPOLOGY, TrainingConfig, synthetic_mnist, train_network

    chip = FpgaChip.build(args.platform)
    field = cached_fault_field(chip)
    dataset = synthetic_mnist(n_train=args.train_samples, n_test=1000)
    trained = train_network(dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3))
    network = QuantizedNetwork.from_network(trained.network)
    flow = IcbpFlow(chip=chip, network=network, dataset=dataset, fault_field=field, max_eval_samples=1000)
    comparison = flow.compare_policies(compile_seeds=range(max(1, args.seeds)))
    default = comparison[PlacementPolicy.DEFAULT]
    icbp = comparison[PlacementPolicy.LAST_LAYER]
    payload = {
        "platform": args.platform,
        "voltage_v": default.voltage_v,
        "baseline_error": default.baseline_error,
        "default_placement": {
            "error": default.classification_error,
            "accuracy_loss": default.accuracy_loss,
        },
        "icbp": {
            "error": icbp.classification_error,
            "accuracy_loss": icbp.accuracy_loss,
            "protected_layers": list(icbp.protected_layers),
        },
        "power_savings_vs_vmin": icbp.power_savings_vs_vmin,
    }
    if args.json:
        _emit_json(payload)
        return 0
    print(render_table(
        ["placement", "error %", "accuracy loss %"],
        [
            ("default", 100 * default.classification_error, 100 * default.accuracy_loss),
            ("ICBP", 100 * icbp.classification_error, 100 * icbp.accuracy_loss),
        ],
        title=(
            f"ICBP vs default placement on {args.platform} at {default.voltage_v:.2f} V "
            f"({100 * icbp.power_savings_vs_vmin:.1f} % BRAM power below Vmin)"
        ),
    ))
    return 0


# ----------------------------------------------------------------------
# Campaign sub-commands
# ----------------------------------------------------------------------
def _resolve_spec(args: argparse.Namespace) -> CampaignSpec:
    """The campaign spec named by ``--spec``, ``--preset`` or ``--name``."""
    given = [
        flag
        for flag, value in (
            ("--spec", args.spec),
            ("--preset", args.preset),
            ("--name", getattr(args, "name", None)),
        )
        if value
    ]
    if len(given) != 1:
        raise CampaignError(
            "give exactly one of --spec PATH, --preset NAME"
            + (" or --name NAME" if hasattr(args, "name") else "")
        )
    if args.spec:
        path = Path(args.spec)
        if not path.exists():
            raise CampaignError(f"campaign spec file {path} does not exist")
        return CampaignSpec.from_json(path.read_text())
    if args.preset:
        return preset_spec(args.preset)
    return open_store(args.name, args.root).load_manifest()


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    if args.search and args.search != spec.search:
        # Overriding the knob redefines the campaign (the spec hash, and
        # therefore the store identity, includes the search mode).
        spec = dataclasses.replace(spec, search=args.search)

    def progress(unit_id: str, done: int, total: int) -> None:
        print(f"  [{done}/{total}] unit {unit_id} done", file=sys.stderr)

    report = run_campaign(
        spec,
        root=args.root,
        max_workers=args.jobs,
        scheduler="serial" if args.no_processes else args.backend,
        progress=None if args.json else progress,
        store_version=args.store_version,
    )
    if args.json:
        _emit_json(report.to_dict())
        return 0
    store = open_store(spec.name, args.root)
    evaluations = report.evaluations
    print(render_table(
        ["metric", "value"],
        [
            ("campaign", spec.name),
            ("sweep kind", spec.sweep),
            ("search mode", report.search),
            ("spec hash", spec.spec_hash),
            ("units total", report.n_units),
            ("units executed", len(report.executed)),
            ("units skipped (already complete)", len(report.skipped)),
            ("backend", f"simulated ({report.scheduler} x{report.n_workers})"),
            ("workers", report.n_workers),
            ("store layout", f"v{report.store_version}"),
            ("fault-field evaluations", evaluations.get("n_evaluations", 0)),
            ("exhaustive-equivalent evaluations",
             evaluations.get("n_exhaustive_equivalent", 0)),
            ("evaluations saved", evaluations.get("evaluations_saved", 0)),
            ("result store", str(store.directory)),
        ]
        + (
            [("governor bundle", report.governor_bundle)]
            if report.governor_bundle
            else []
        ),
        title=f"Campaign {spec.name}: run complete",
    ))
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    # must_exist=False keeps "spec given, nothing run yet" a valid
    # all-pending status instead of an error.
    status = open_store(spec.name, args.root, must_exist=False).status(spec)
    if args.json:
        _emit_json(status.to_dict())
        return 0
    print(render_table(
        ["metric", "value"],
        [
            ("campaign", status.name),
            ("sweep kind", status.sweep),
            ("spec hash", status.spec_hash),
            ("units total", status.n_units),
            ("units completed", status.n_completed),
            ("units pending", status.n_pending),
            ("complete", "yes" if status.is_complete else "no"),
        ],
        title=f"Campaign {status.name}: status",
    ))
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    report = build_report(open_store(spec.name, args.root), spec)
    if args.json:
        _emit_json(report.to_dict())
        return 0
    # The table path reads only the aggregates — the per-unit rows (lazy on
    # the v2 streaming path) are never materialized here, which is what
    # keeps 'campaign report' sub-second on 100k-die stores.
    scope_rows = [("fleet", metric, dist) for metric, dist in report.fleet.items()] + [
        (platform, metric, dist)
        for platform, dists in report.by_platform.items()
        for metric, dist in dists.items()
    ]
    print(render_table(
        ["scope", "metric", "mean", "min", "max", "p5", "p95"],
        [
            (
                scope,
                metric,
                dist.summary.mean,
                dist.summary.minimum,
                dist.summary.maximum,
                dist.percentiles["p5"],
                dist.percentiles["p95"],
            )
            for scope, metric, dist in scope_rows
        ],
        title=(
            f"Campaign {spec.name}: {report.n_completed}/{spec.n_units} units, "
            f"population statistics ({spec.sweep})"
        ),
    ))
    evaluations = report.evaluations
    if evaluations.get("n_units"):
        print(
            f"  * {spec.search} search: "
            f"{evaluations['n_evaluations']} fault-field evaluations across the fleet "
            f"({evaluations['n_exhaustive_equivalent']} exhaustive-equivalent, "
            f"{evaluations['evaluations_saved']} saved)"
        )
    if report.similarity:
        extremes = similarity_extremes(report.similarity)
        print()
        print(render_table(
            ["metric", "value"],
            sorted(extremes.items()),
            title="Die-to-die FVM similarity across same-part-number pairs (Fig. 7 generalized)",
        ))
    return 0


# ----------------------------------------------------------------------
# Runtime sub-commands
# ----------------------------------------------------------------------
def _runtime_summary_payload(logs, simulator) -> dict:
    """The shared summary block of both runtime ``--json`` documents."""
    from repro.analysis.runtime import policy_comparison, summarize_telemetry

    nominal = simulator.nominal_energy_j()
    floor = simulator.guardband_floor_energy_j()
    summaries = {name: summarize_telemetry(log) for name, log in logs.items()}
    rows = policy_comparison(summaries, nominal, floor, order=list(logs))
    return {
        "baselines": {
            "nominal_energy_j": nominal,
            "guardband_floor_energy_j": floor,
        },
        "policies": {row["policy"]: row for row in rows},
    }


def _print_runtime_table(payload: dict, title: str) -> None:
    """Human-readable policy comparison (shared by run and report)."""
    rows = [
        (
            name,
            row["mean_voltage_v"],
            row["energy_j"],
            100.0 * row["guardband_recovered_fraction"],
            row["faulty_inferences"],
            row["slo_violations"],
            row["crash_steps"],
        )
        for name, row in payload["policies"].items()
    ]
    print(render_table(
        ["policy", "mean V", "energy (J)", "guardband recovered %",
         "faulty inferences", "SLO violations", "crash steps"],
        rows,
        title=title,
    ))


def _cmd_runtime_run(args: argparse.Namespace) -> int:
    # Imported lazily: the runtime stack pulls in the NN/accelerator layers.
    from repro.fpga.platform import fleet_serials
    from repro.nn import (
        QuantizedNetwork,
        SCALED_TOPOLOGY,
        TrainingConfig,
        synthetic_mnist,
        train_network,
    )
    from repro.runtime import FleetSimulator, GovernorBundle, build_trace

    if args.campaign:
        store = open_store(args.campaign, args.root)
        bundle = GovernorBundle.from_campaign(store)
        backend_block = _backend_block("campaign-store", "serial", 1, args.campaign)
    else:
        chips = [
            FpgaChip.build(args.platform, serial=serial)
            for serial in fleet_serials(args.platform, args.chips)
        ]
        # Inline characterization (live adaptive discovery on every die)
        # fans out over the execution layer's scheduling substrate.
        jobs = _resolved_jobs(args)
        bundle = GovernorBundle.from_chips(
            chips, scheduler=args.backend, jobs=jobs
        )
        backend_block = _backend_block("simulated", args.backend, jobs)

    dataset = synthetic_mnist(n_train=args.train_samples, n_test=200)
    trained = train_network(
        dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
    )
    network = QuantizedNetwork.from_network(trained.network)

    trace = build_trace(args.trace, n_steps=args.steps, seed=args.seed)
    simulator = FleetSimulator(
        bundle,
        network,
        trace,
        icbp=not args.no_icbp,
        capacity_rps=args.capacity_rps,
        core=args.sim_core,
    )
    policies = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
    if args.sim_jobs < 1:
        raise ExecError("--sim-jobs must be at least 1")
    logs = simulator.run_policies(
        policies,
        scheduler="process" if args.sim_jobs > 1 else "serial",
        jobs=args.sim_jobs,
    )

    if args.save:
        document = {
            "version": 1,
            "trace": trace.to_dict(),
            "bundle": bundle.to_document(),
            "baselines": {
                "nominal_energy_j": simulator.nominal_energy_j(),
                "guardband_floor_energy_j": simulator.guardband_floor_energy_j(),
            },
            "runs": {name: log.to_document() for name, log in logs.items()},
        }
        Path(args.save).write_text(json.dumps(document, indent=2) + "\n")

    payload = {
        "fleet": {
            "n_chips": len(bundle),
            "source": bundle.source,
            "icbp": not args.no_icbp,
        },
        "trace": trace.to_dict(),
        "backend": backend_block,
        **_runtime_summary_payload(logs, simulator),
    }
    if args.json:
        _emit_json(
            payload,
            steps_per_s=0.0 if _COMMAND_T0 is None else round(
                len(logs) * trace.n_steps
                / max(1e-9, time.perf_counter() - _COMMAND_T0),
                3,
            ),
        )
        return 0
    _print_runtime_table(
        payload,
        title=(
            f"Runtime governor on {len(bundle)} chips, {trace.n_steps}-step "
            f"{trace.kind} trace ({payload['fleet']['source']})"
        ),
    )
    return 0


def _cmd_runtime_report(args: argparse.Namespace) -> int:
    from repro.analysis.runtime import (
        guardband_recovery_fraction,
        summarize_telemetry,
    )
    from repro.runtime import TelemetryError, TelemetryLog

    path = Path(args.telemetry)
    if not path.exists():
        raise TelemetryError(f"no telemetry document at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TelemetryError(
            f"telemetry document {path} is not valid JSON: {exc}"
        ) from exc
    logs = {
        name: TelemetryLog.from_document(run)
        for name, run in document.get("runs", {}).items()
    }
    if not logs:
        raise TelemetryError(f"telemetry document {path} holds no runs")

    baselines = document.get("baselines")
    if not baselines:
        raise TelemetryError(
            f"telemetry document {path} carries no energy baselines; "
            "re-save it with 'runtime run --save'"
        )
    nominal = float(baselines["nominal_energy_j"])
    floor = float(baselines["guardband_floor_energy_j"])

    summaries = {name: summarize_telemetry(log) for name, log in logs.items()}
    payload = {
        "telemetry": str(path),
        "trace": dict(document.get("trace", {})),
        "baselines": {
            "nominal_energy_j": nominal,
            "guardband_floor_energy_j": floor,
        },
        "policies": {
            name: {
                **summary.to_dict(),
                "guardband_recovered_fraction": guardband_recovery_fraction(
                    summary, nominal, floor
                ),
            }
            for name, summary in summaries.items()
        },
    }
    if args.json:
        _emit_json(payload)
        return 0
    _print_runtime_table(
        payload, title=f"Runtime telemetry report: {path.name}"
    )
    return 0


def _cmd_runtime_scale(args: argparse.Namespace) -> int:
    # Lazy import: the population engine only needs numpy + the core
    # calibration, but it lives beside the full runtime stack.
    from dataclasses import replace

    import numpy as np

    from repro.runtime.fleetscale import (
        FleetScaleError,
        SyntheticFleet,
        SyntheticFleetSpec,
        guardband_floor_energy_j,
        nominal_energy_j,
        simulate_policies,
    )
    from repro.runtime.workload import build_trace

    trace = build_trace(args.trace, n_steps=args.steps, seed=args.seed)
    load_scale = args.dies / 16.0 if args.load_scale is None else args.load_scale
    if load_scale <= 0:
        raise FleetScaleError("--load-scale must be positive")
    trace = replace(
        trace,
        requests=np.rint(trace.requests * load_scale).astype(np.int64),
    )
    fleet = SyntheticFleet.draw(
        SyntheticFleetSpec(
            n_dies=args.dies, platform=args.platform, seed=args.fleet_seed
        )
    )
    jobs = _resolved_jobs(args)
    policies = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
    results = simulate_policies(
        fleet,
        trace,
        policies,
        capacity_rps=args.capacity_rps,
        core=args.sim_core,
        scheduler=args.backend,
        jobs=jobs,
    )

    nominal = nominal_energy_j(fleet, trace)
    floor = guardband_floor_energy_j(fleet, trace)
    span = max(nominal - floor, 1e-12)
    policy_block = {}
    for name, result in results.items():
        totals = result.totals()
        policy_block[name] = {
            **totals,
            "guardband_recovered_fraction": round(
                (nominal - totals["energy_j"]) / span, 6
            ),
            "digest": result.digest(),
        }
    device_seconds = args.dies * trace.duration_s
    payload = {
        "fleet": {
            "n_dies": args.dies,
            "platform": args.platform,
            "seed": args.fleet_seed,
            "drifted_dies": int(np.sum(fleet.true_vcrash_v > fleet.vmin_v)),
            "crash_first_dies": int(
                np.sum(fleet.max_threshold_v < fleet.true_vcrash_v)
            ),
        },
        "trace": {**trace.to_dict(), "load_scale": load_scale},
        "backend": _backend_block("synthetic-fleet", args.backend, jobs),
        "core": args.sim_core,
        "device_seconds": device_seconds,
        "baselines": {
            "nominal_energy_j": round(nominal, 9),
            "guardband_floor_energy_j": round(floor, 9),
        },
        "policies": policy_block,
    }
    if args.json:
        elapsed = (
            1e-9 if _COMMAND_T0 is None
            else max(1e-9, time.perf_counter() - _COMMAND_T0)
        )
        _emit_json(
            payload,
            device_seconds_per_s=round(
                len(results) * device_seconds / elapsed, 3
            ),
        )
        return 0
    rows = [
        (
            name,
            row["energy_j"],
            100.0 * row["guardband_recovered_fraction"],
            row["faulty_inferences"],
            row["slo_violations"],
            row["crash_steps"],
            row["n_actuations"],
        )
        for name, row in policy_block.items()
    ]
    print(render_table(
        ["policy", "energy (J)", "guardband recovered %", "faulty inferences",
         "SLO violations", "crash steps", "actuations"],
        rows,
        title=(
            f"Population governor comparison: {args.dies} dies, "
            f"{trace.n_steps}-step {trace.kind} trace ({args.sim_core} core)"
        ),
    ))
    return 0


_RUNTIME_COMMANDS = {
    "run": _cmd_runtime_run,
    "report": _cmd_runtime_report,
    "scale": _cmd_runtime_scale,
}


def _cmd_runtime(args: argparse.Namespace) -> int:
    from repro.fpga.platform import PlatformError
    from repro.runtime import (
        CharacterizationError,
        GovernorError,
        SimulationError,
        TelemetryError,
        TraceError,
    )

    try:
        return _RUNTIME_COMMANDS[args.runtime_command](args)
    except (
        CampaignError,
        CharacterizationError,
        ExecError,
        GovernorError,
        PlatformError,
        SimulationError,
        TelemetryError,
        TraceError,
        OSError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_campaign_migrate(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    report = migrate_store(spec.name, args.root, keep_v1=args.keep_v1)
    if args.json:
        _emit_json(report.to_dict())
        return 0
    rows = [
        ("campaign", report.name),
        ("root", report.root),
        ("store layout", f"v{report.from_version} -> v{report.to_version}"),
        ("already v2 (no-op)", "yes" if report.already_v2 else "no"),
        ("units migrated", report.n_units),
        ("segments", report.n_segments),
    ]
    if report.digest:
        rows.append(("verified digest", report.digest))
    if report.backup:
        rows.append(("v1 backup", report.backup))
    print(render_table(
        ["metric", "value"],
        rows,
        title=f"Campaign {report.name}: store migration",
    ))
    return 0


_CAMPAIGN_COMMANDS = {
    "run": _cmd_campaign_run,
    "status": _cmd_campaign_status,
    "report": _cmd_campaign_report,
    "migrate": _cmd_campaign_migrate,
}


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        return _CAMPAIGN_COMMANDS[args.campaign_command](args)
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


async def _serve_forever(app: Any, host: str, port: int) -> None:
    """Bind the service, print the ready line, run until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.service import start_service

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix event loops
            pass
    server = await start_service(app, host=host, port=port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    # The ready line is the startup contract: scripts (the CI smoke step)
    # wait for it before sending traffic, and it carries the actual port
    # when --port 0 asked for an ephemeral one.
    print(
        f"serving {len(app.service.bundle)} dies on "
        f"http://{bound_host}:{bound_port} "
        f"({len(app.routes)} endpoints; SIGINT/SIGTERM to stop)",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        current = asyncio.current_task()
        lingering = [task for task in asyncio.all_tasks() if task is not current]
        for task in lingering:
            task.cancel()
        if lingering:
            await asyncio.gather(*lingering, return_exceptions=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.characterization import CharacterizationError
    from repro.service import FleetService, ServiceApp, ServiceError

    try:
        if args.store:
            service = FleetService.from_campaign(
                args.store, args.root,
                engine_workers=args.engine_workers, batch=args.batch,
            )
        else:
            service = FleetService.from_bundle_file(
                args.bundle,
                engine_workers=args.engine_workers, batch=args.batch,
            )
    except (CampaignError, CharacterizationError, ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    app = ServiceApp(service)
    try:
        asyncio.run(_serve_forever(app, args.host, args.port))
    except OSError as error:  # e.g. port already bound
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        service.close()
    return 0


# ----------------------------------------------------------------------
# Trace sub-commands
# ----------------------------------------------------------------------
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import TraceError, render_summary_table, summarize_trace

    try:
        document = summarize_trace(args.path)
    except (TraceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(document)
        return 0
    print(render_summary_table(document))
    return 0


_COMMANDS = {
    "guardband": _cmd_guardband,
    "sweep": _cmd_sweep,
    "characterize": _cmd_characterize,
    "icbp": _cmd_icbp,
    "campaign": _cmd_campaign,
    "runtime": _cmd_runtime,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
}


def _install_observability(args: argparse.Namespace):
    """Honour ``--obs-trace``/``--obs-metrics``; returns the teardown hook.

    Installation happens before the command runs, teardown after it
    returns (including on error paths): the trace recorder is closed and
    reset, and the metrics registry — stamped with build info — is
    rendered to its output path and switched back off.
    """
    trace_path = getattr(args, "obs_trace", None)
    metrics_path = getattr(args, "obs_metrics", None)
    if trace_path:
        from repro.obs import install_trace

        install_trace(trace_path)
    if metrics_path:
        from repro.obs import build_info, enable

        build_info(__version__, enable())

    def teardown() -> None:
        if metrics_path:
            from repro.obs import disable, get_registry

            registry = get_registry()
            if registry is not None:
                Path(metrics_path).write_text(registry.render())
            disable()
        if trace_path:
            from repro.obs import reset_recorder

            reset_recorder()

    return teardown


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-undervolt`` console script."""
    global _COMMAND_T0
    parser = build_parser()
    args = parser.parse_args(argv)
    _COMMAND_T0 = time.perf_counter()
    teardown = _install_observability(args)
    try:
        return _COMMANDS[args.command](args)
    except ExecError as error:
        # Execution-layer misconfiguration (bad backend/replay request) is
        # operator input, not a crash: one line, non-zero exit.
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        teardown()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
