"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` owns a set of *metric families* — a name, a
help string, a type, and a set of label names — each holding one child
per distinct label-value combination.  The registry renders the whole set
as Prometheus text exposition format (version 0.0.4), which is what the
service's ``/metrics`` endpoint and the CLI's ``--obs-metrics PATH`` dump
emit.  Everything is stdlib: the registry adds **zero** dependencies,
honouring the same constraint as every other layer.

Two integration styles:

* **direct instrumentation** — hot paths own a child handle and call
  ``inc``/``set``/``observe`` on it (the service's request counter and
  latency histogram work this way);
* **callbacks** — existing telemetry objects (the exec layer's
  :class:`~repro.exec.EngineCounters`, the service's
  :class:`~repro.service.stats.ServiceStats`) stay the source of truth and
  a registered callback mirrors them into the registry at render time, so
  the legacy ``--json``/``/stats`` blocks remain byte-identical (see
  :mod:`repro.obs.adapters`).

Thread-safety: one lock per registry guards family creation and callback
registration; child value updates are single attribute mutations guarded
by the same lock only where torn reads could matter (histogram bucket
vectors).  The registry is designed for scrape-heavy, update-light and
update-heavy, scrape-light workloads alike — renders take the lock once.

A process-wide registry can be switched on with :func:`enable` (the CLI's
``--obs-metrics`` does this); with it off — the default — :func:`active`
is ``False`` and the adapters are no-ops, which is what keeps default runs
free of observability cost.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class MetricsError(ValueError):
    """An invalid metric or label name, or a family redefinition conflict."""


#: Prometheus metric / label name grammar.
_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in seconds (request-serving shaped).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_pairs(
    labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...]
) -> str:
    """The ``{name="value",...}`` suffix of one sample line (may be empty)."""
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram (one labeled child).

    ``buckets`` are upper bounds (the implicit ``+Inf`` bucket is always
    appended); ``observe`` increments every bucket whose bound is >= the
    sample, Prometheus-style cumulative counts.
    """

    __slots__ = ("buckets", "counts", "total", "n_samples", "_lock")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.n_samples = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
            self.counts[-1] += 1  # +Inf
            self.total += value
            self.n_samples += 1


class MetricFamily:
    """One named family: type, help, label names, and labeled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: "Dict[Tuple[str, ...], Counter | Gauge | Histogram]" = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues: "str | int | float") -> "Counter | Gauge | Histogram":
        """The child for one label-value combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> "Counter | Gauge | Histogram":
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)

    # Unlabeled families proxy the single child's API.
    def _solo(self) -> "Counter | Gauge | Histogram":
        if self.labelnames:
            raise MetricsError(f"{self.name} is labeled; call .labels(...) first")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def render(self) -> List[str]:
        """This family's exposition lines (samples sorted by label key)."""
        lines = [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key in sorted(self._children):
            child = self._children[key]
            suffix = _label_pairs(self.labelnames, key)
            if isinstance(child, Histogram):
                cumulative: List[str] = []
                for bound, count in zip(
                    child.buckets + (math.inf,), child.counts
                ):
                    bucket_labels = _label_pairs(
                        self.labelnames + ("le",),
                        key + (_format_value(bound),),
                    )
                    cumulative.append(
                        f"{self.name}_bucket{bucket_labels} {count}"
                    )
                lines.extend(cumulative)
                lines.append(f"{self.name}_sum{suffix} {_format_value(child.total)}")
                lines.append(f"{self.name}_count{suffix} {child.n_samples}")
            else:
                lines.append(f"{self.name}{suffix} {_format_value(child.value)}")
        return lines


class MetricsRegistry:
    """A set of metric families plus render-time callbacks."""

    def __init__(self) -> None:
        self._families: "Dict[str, MetricFamily]" = {}
        self._callbacks: List[Callable[[], None]] = []
        self._callback_keys: set = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        if not _NAME_PATTERN.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_PATTERN.match(label):
                raise MetricsError(f"invalid label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise MetricsError(
                        f"metric {name} already registered as {family.kind}"
                        f"{family.labelnames}, cannot redefine as {kind}"
                        f"{tuple(labelnames)}"
                    )
                return family
            family = MetricFamily(
                name,
                help_text,
                kind,
                tuple(labelnames),
                tuple(buckets) if buckets is not None else None,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def register_callback(
        self, fn: Callable[[], None], key: Optional[object] = None
    ) -> None:
        """Run ``fn`` before every render (mirror external state in).

        ``key`` deduplicates: registering the same key twice keeps only the
        first callback — what lets adapters bind idempotently per source
        object.
        """
        with self._lock:
            if key is not None:
                if key in self._callback_keys:
                    return
                self._callback_keys.add(key)
            self._callbacks.append(fn)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The whole registry as Prometheus text format (families sorted)."""
        with self._lock:
            callbacks = list(self._callbacks)
        for fn in callbacks:
            fn()
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# The process-wide registry (CLI --obs-metrics switches it on)
# ----------------------------------------------------------------------
_GLOBAL: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch process-wide metrics collection on; returns the registry."""
    global _GLOBAL
    _GLOBAL = registry if registry is not None else MetricsRegistry()
    return _GLOBAL


def disable() -> None:
    """Switch process-wide metrics collection off (the default state)."""
    global _GLOBAL
    _GLOBAL = None


def active() -> bool:
    """Whether a process-wide registry is collecting."""
    return _GLOBAL is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The process-wide registry, or ``None`` when collection is off."""
    return _GLOBAL


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "active",
    "disable",
    "enable",
    "get_registry",
]
