"""The campaign progress event stream (successor to the bare callback).

:func:`repro.campaign.runner.run_campaign` used to report progress through
an ad-hoc ``progress(unit_id, n_done, n_pending)`` callable.  The runner
now publishes :class:`ProgressEvent` records to an :class:`EventStream`,
which both forwards each event to the active trace recorder (as a
``campaign.progress`` trace event) and fans it out to any subscribers.
The old callback survives as a shim — :func:`callback_shim` adapts it to a
subscriber — so existing callers and tests pass unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from . import trace


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification: a name plus free-form fields."""

    name: str
    fields: Dict[str, Any] = field(default_factory=dict)


class EventStream:
    """Publish/subscribe fan-out for progress events, trace-backed.

    Subscribers run synchronously on the emitting thread, in subscription
    order; ``emit`` also records the event on the active trace recorder so
    a ``--obs-trace`` file carries the full progress history for free.
    """

    def __init__(self, record_trace: bool = True) -> None:
        self._subscribers: List[Callable[[ProgressEvent], None]] = []
        self._record_trace = record_trace

    def subscribe(self, fn: Callable[[ProgressEvent], None]) -> Callable[[], None]:
        """Add a subscriber; returns a zero-argument unsubscribe handle."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

        return unsubscribe

    def emit(self, name: str, /, **fields: Any) -> ProgressEvent:
        """Publish one event to the trace recorder and every subscriber."""
        event = ProgressEvent(name=name, fields=dict(fields))
        if self._record_trace:
            trace.event(name, **fields)
        for fn in list(self._subscribers):
            fn(event)
        return event


def callback_shim(
    progress: Callable[[str, int, int], None],
) -> Callable[[ProgressEvent], None]:
    """Adapt a legacy ``progress(unit_id, n_done, n_pending)`` callback to
    an :class:`EventStream` subscriber listening for ``campaign.progress``."""

    def subscriber(event: ProgressEvent) -> None:
        if event.name != "campaign.progress":
            return
        progress(
            event.fields.get("unit_id", ""),
            int(event.fields.get("done", 0)),
            int(event.fields.get("pending", 0)),
        )

    return subscriber


__all__ = ["EventStream", "ProgressEvent", "callback_shim"]
