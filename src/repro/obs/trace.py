"""Span-based tracing: bounded JSON-lines trace files, null by default.

A *span* is one named, labeled piece of work with a monotonic-clock
duration and a parent — ``obs.span("campaign.unit", unit=uid)`` around the
work is the whole API.  Finished spans are appended to a JSON-lines trace
file, one object per line:

``{"kind": "span", "name": ..., "span_id": ..., "parent_id": ...,
"pid": ..., "t_start_s": ..., "duration_s": ..., "labels": {...}}``

plus zero-duration ``{"kind": "event", ...}`` records for the progress
stream.  The design constraints, in order:

* **the null recorder is the default and free** — with tracing off (no
  ``--obs-trace``), ``span()`` returns one shared no-op context manager:
  two cheap method calls, no allocation, no branches in the caller.  The
  ``bench_obs_overhead.py`` acceptance benchmark holds this to <2% on the
  fleet campaign path;
* **crash-safe appends** — every record is a single ``os.write`` to an
  ``O_APPEND`` descriptor, so concurrent writers (forked campaign workers
  sharing the inherited recorder) never interleave lines and a SIGKILL can
  tear at most the final line, which the summarizer skips with a warning;
* **disjoint ids across processes** — span ids are ``"<pid>-<seq>"``, and
  a forked worker re-opens its own descriptor on first write (detected by
  pid change), so process-sharded campaigns write one merged, well-formed
  trace;
* **bounded files** — a recorder stops after ``max_records`` records
  (default 1M), noting the truncation once, so a runaway loop cannot fill
  a disk.

Parent/child structure is tracked per thread (a ``threading.local`` stack);
a worker process forked inside a span inherits that span as its initial
parent, so campaign-unit spans written by workers still point back at the
campaign-run root span.

Determinism: span ids, pids and timings are schedule-dependent by nature;
the *stripped* form — name plus sorted labels — is not, which is what the
``trace summarize`` digest hashes (see :mod:`repro.obs.summarize`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional


class _NullSpan:
    """The shared no-op span: the entire cost of tracing-off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: records nothing, costs (almost) nothing."""

    enabled = False

    def span(self, name: str, /, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, /, **fields: Any) -> None:
        return None

    def record(
        self,
        name: str,
        t_start_s: float,
        duration_s: float,
        labels: Optional[Dict[str, Any]] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        return None

    def current_span_id(self) -> Optional[str]:
        return None

    def close(self) -> None:
        return None


NULL_RECORDER = NullRecorder()


class _Span:
    """One live span: context manager measuring a monotonic duration."""

    __slots__ = ("recorder", "name", "labels", "span_id", "parent_id", "t0")

    def __init__(
        self,
        recorder: "JsonlTraceRecorder",
        name: str,
        labels: Dict[str, Any],
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.labels = labels
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.t0 = 0.0

    def __enter__(self) -> "_Span":
        self.span_id = self.recorder._next_id()
        stack = self.recorder._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.t0 = time.monotonic()
        return self

    def __exit__(self, *_exc_info) -> None:
        duration = time.monotonic() - self.t0
        stack = self.recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:
            # Interleaved exits (concurrent request spans sharing one
            # event-loop thread): remove this span wherever it sits so the
            # stack cannot leak entries.
            stack.remove(self.span_id)
        self.recorder._write(
            {
                "kind": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "pid": os.getpid(),
                "t_start_s": round(self.t0, 9),
                "duration_s": round(duration, 9),
                "labels": self.labels,
            }
        )


class JsonlTraceRecorder:
    """Append finished spans and events to one JSON-lines trace file."""

    enabled = True

    #: Default record cap per recorder (and therefore per process).
    DEFAULT_MAX_RECORDS = 1_000_000

    def __init__(self, path: "str | os.PathLike", max_records: Optional[int] = None) -> None:
        self.path = os.fspath(path)
        self.max_records = (
            self.DEFAULT_MAX_RECORDS if max_records is None else int(max_records)
        )
        if self.max_records < 1:
            raise ValueError("max_records must be at least 1")
        self._fd: Optional[int] = None
        self._fd_pid: Optional[int] = None
        self._n_written = 0
        self._noted_truncation = False
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Identity and structure
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        return f"{os.getpid():x}-{seq:x}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        """The innermost open span id on this thread.

        A forked worker's surviving thread keeps the forking thread's
        stack (fork copies thread-local state of the thread that forked),
        so spans opened in the child chain back to whatever span was open
        at the fork point.
        """
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _ensure_fd(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._fd_pid != pid:
            if self._fd is not None and self._fd_pid == pid:
                os.close(self._fd)
            # A forked child must not close the fd it shares with the
            # parent's open file description; it simply opens its own.
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._fd_pid = pid
        return self._fd

    def _write(self, record: Dict[str, Any]) -> None:
        if self._n_written >= self.max_records:
            if not self._noted_truncation:
                self._noted_truncation = True
                line = json.dumps(
                    {
                        "kind": "event",
                        "name": "trace.truncated",
                        "pid": os.getpid(),
                        "fields": {"max_records": self.max_records},
                    },
                    separators=(",", ":"),
                    sort_keys=True,
                )
                os.write(self._ensure_fd(), (line + "\n").encode("utf-8"))
            return
        self._n_written += 1
        line = json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        # One write call per line: concurrent O_APPEND writers (forked
        # campaign shards) cannot interleave bytes within a line.
        os.write(self._ensure_fd(), (line + "\n").encode("utf-8"))

    # ------------------------------------------------------------------
    # Public recording API (mirrors NullRecorder)
    # ------------------------------------------------------------------
    def span(self, name: str, /, **labels: Any) -> _Span:
        """A context manager recording one span around its body.

        ``name`` is positional-only so a label may itself be called
        ``name`` (``span("campaign.run", name=spec.name)``).
        """
        return _Span(self, name, labels)

    def event(self, name: str, /, **fields: Any) -> None:
        """Record one zero-duration event under the current span."""
        self._write(
            {
                "kind": "event",
                "name": name,
                "span_id": self._next_id(),
                "parent_id": self.current_span_id(),
                "pid": os.getpid(),
                "t_start_s": round(time.monotonic(), 9),
                "fields": fields,
            }
        )

    def record(
        self,
        name: str,
        t_start_s: float,
        duration_s: float,
        labels: Optional[Dict[str, Any]] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        """Record one pre-measured span (dispatch paths that cannot nest a
        context manager around the work, e.g. parallel task completion)."""
        self._write(
            {
                "kind": "span",
                "name": name,
                "span_id": self._next_id(),
                "parent_id": parent_id if parent_id is not None else self.current_span_id(),
                "pid": os.getpid(),
                "t_start_s": round(t_start_s, 9),
                "duration_s": round(duration_s, 9),
                "labels": labels or {},
            }
        )

    def close(self) -> None:
        """Close the descriptor (idempotent; reopens on next write)."""
        if self._fd is not None and self._fd_pid == os.getpid():
            os.close(self._fd)
        self._fd = None
        self._fd_pid = None


# ----------------------------------------------------------------------
# The process-wide recorder
# ----------------------------------------------------------------------
_RECORDER: "NullRecorder | JsonlTraceRecorder" = NULL_RECORDER


def get_recorder() -> "NullRecorder | JsonlTraceRecorder":
    """The active recorder (the shared null recorder by default)."""
    return _RECORDER


def set_recorder(
    recorder: "NullRecorder | JsonlTraceRecorder",
) -> "NullRecorder | JsonlTraceRecorder":
    """Install ``recorder`` process-wide; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def install_trace(path: "str | os.PathLike", max_records: Optional[int] = None) -> JsonlTraceRecorder:
    """Install a JSON-lines recorder writing to ``path`` (CLI ``--obs-trace``)."""
    recorder = JsonlTraceRecorder(path, max_records=max_records)
    set_recorder(recorder)
    return recorder


def reset_recorder() -> None:
    """Back to the null recorder, closing the previous one."""
    previous = set_recorder(NULL_RECORDER)
    previous.close()


def span(name: str, /, **labels: Any):
    """A span on the active recorder — the instrumentation entry point."""
    return _RECORDER.span(name, **labels)


def event(name: str, /, **fields: Any) -> None:
    """An event on the active recorder."""
    _RECORDER.event(name, **fields)


__all__ = [
    "JsonlTraceRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "event",
    "get_recorder",
    "install_trace",
    "reset_recorder",
    "set_recorder",
    "span",
]
