"""Trace-file analysis: per-phase timing tables and deterministic digests.

``repro-undervolt trace summarize`` loads a JSON-lines trace file (see
:mod:`repro.obs.trace`), groups spans by name — the *phase* — and reports
per-phase counts, wall-clock totals and self time (wall minus the time
spent in child spans), plus a digest of the trace's *stripped* form.

Robustness is the point: trace files come from processes that may have
been SIGKILLed mid-write, so the loader treats a malformed **final** line
as a torn write — skipped with a warning, never a crash.  A malformed
line anywhere else is corruption and raises.

The digest hashes only what is deterministic: each span reduced to
``name|k=v,...`` (labels sorted), the multiset of those strings sorted and
sha256'd.  Span ids, parent ids, pids, timestamps and durations are
stripped, and events are excluded (progress events carry completion-order
ordinals).  A parallel campaign run therefore digests identically for any
worker count ≥ 2 — the wave/shard structure is deterministic even though
the schedule is not.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Tuple


class TraceError(ValueError):
    """A structurally corrupt trace file (not a torn final line)."""


def load_trace(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """All records from a JSON-lines trace file, plus loader warnings.

    A malformed or truncated **final** line is the signature of a writer
    killed mid-``write`` — it is dropped with a warning.  Malformed lines
    before the end mean the file is corrupt and raise :class:`TraceError`.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict[str, Any]] = []
    warnings: List[str] = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except ValueError:
            if index == len(lines) - 1:
                warnings.append(
                    f"skipped torn final line ({len(line)} bytes) — "
                    "writer likely killed mid-write"
                )
                continue
            raise TraceError(
                f"{path}: malformed record on line {index + 1}"
            ) from None
        records.append(record)
    return records, warnings


def _stripped_key(span: Dict[str, Any]) -> str:
    """One span reduced to its deterministic form: name plus sorted labels."""
    labels = span.get("labels") or {}
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{span.get('name', '')}|{parts}"


def trace_digest(records: List[Dict[str, Any]]) -> str:
    """sha256 over the sorted multiset of stripped span keys."""
    keys = sorted(
        _stripped_key(record)
        for record in records
        if record.get("kind") == "span"
    )
    hasher = hashlib.sha256()
    for key in keys:
        hasher.update(key.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def summarize_trace(path: str) -> Dict[str, Any]:
    """The ``trace summarize`` document for one trace file.

    Per phase (span name): span count, total wall-clock, self time (wall
    minus direct children's wall), and mean wall.  Self time is what makes
    nested instrumentation readable — ``campaign.run`` wall includes every
    unit, but its self time is only the orchestration overhead.
    """
    records, warnings = load_trace(path)
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]

    wall_by_id: Dict[str, float] = {}
    child_wall: Dict[str, float] = {}
    for span in spans:
        span_id = span.get("span_id")
        if isinstance(span_id, str):
            wall_by_id[span_id] = float(span.get("duration_s", 0.0))
    for span in spans:
        parent = span.get("parent_id")
        if isinstance(parent, str):
            child_wall[parent] = child_wall.get(parent, 0.0) + float(
                span.get("duration_s", 0.0)
            )

    phases: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        name = str(span.get("name", ""))
        wall = float(span.get("duration_s", 0.0))
        span_id = span.get("span_id")
        self_s = wall - child_wall.get(span_id, 0.0) if isinstance(span_id, str) else wall
        phase = phases.setdefault(
            name, {"n_spans": 0, "wall_s": 0.0, "self_s": 0.0}
        )
        phase["n_spans"] += 1
        phase["wall_s"] += wall
        phase["self_s"] += max(0.0, self_s)

    phase_rows = []
    for name in sorted(phases):
        phase = phases[name]
        phase_rows.append(
            {
                "phase": name,
                "n_spans": phase["n_spans"],
                "wall_s": round(phase["wall_s"], 6),
                "self_s": round(phase["self_s"], 6),
                "mean_ms": round(
                    1000.0 * phase["wall_s"] / phase["n_spans"], 6
                ),
            }
        )

    pids = sorted({r.get("pid") for r in records if r.get("pid") is not None})
    return {
        "trace": path,
        "n_records": len(records),
        "n_spans": len(spans),
        "n_events": len(events),
        "n_processes": len(pids),
        "digest": trace_digest(records),
        "batching": _batching_block(spans),
        "phases": phase_rows,
        "warnings": warnings,
    }


def _batching_block(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """How much evaluation rode batched kernel crossings in this trace.

    ``engine.batch`` and ``fleet.wave`` spans carry an ``n`` label counting
    the requests one crossing settled; ``sched.task`` and ``engine.evaluate``
    are the unbatched units of work.  The headline ratio —
    ``sched.task`` spans per ``engine.batch`` span — reads as "tasks each
    batched crossing replaced"; ``None`` when the trace has no batch spans
    (batching off, or a probe-only flow that never batches).
    """
    counts = {"engine.batch": 0, "fleet.wave": 0, "sched.task": 0, "engine.evaluate": 0}
    batched_requests = 0
    for span in spans:
        name = span.get("name")
        if name not in counts:
            continue
        counts[name] += 1
        if name in ("engine.batch", "fleet.wave"):
            try:
                batched_requests += int((span.get("labels") or {}).get("n", 0))
            except (TypeError, ValueError):
                pass
    n_batched = counts["engine.batch"] + counts["fleet.wave"]
    return {
        "n_batch_spans": counts["engine.batch"],
        "n_wave_spans": counts["fleet.wave"],
        "n_sched_tasks": counts["sched.task"],
        "n_inline_evaluations": counts["engine.evaluate"],
        "batched_requests": batched_requests,
        "sched_tasks_per_batch": (
            round(counts["sched.task"] / counts["engine.batch"], 4)
            if counts["engine.batch"]
            else None
        ),
        "requests_per_batch": (
            round(batched_requests / n_batched, 4) if n_batched else None
        ),
    }


def _render_batching_line(batching: Dict[str, Any]) -> str:
    """One batching line for the text table (the sched.task/engine.batch ratio)."""
    n_batched = batching.get("n_batch_spans", 0) + batching.get("n_wave_spans", 0)
    if not n_batched:
        return "batching: no batched crossings (off, or probe-only flow)"
    parts = [
        f"batching: {batching['n_batch_spans']} engine.batch + "
        f"{batching['n_wave_spans']} fleet.wave spans settled "
        f"{batching['batched_requests']} requests"
    ]
    if batching.get("sched_tasks_per_batch") is not None:
        parts.append(
            f"sched.task/engine.batch ratio {batching['sched_tasks_per_batch']}"
        )
    return "; ".join(parts)


def render_summary_table(document: Dict[str, Any]) -> str:
    """The summarize doc as a fixed-width text table for terminals."""
    lines = [
        f"trace: {document['trace']}",
        f"records: {document['n_records']}  spans: {document['n_spans']}  "
        f"events: {document['n_events']}  processes: {document['n_processes']}",
        f"digest: {document['digest']}",
        _render_batching_line(document.get("batching") or {}),
        "",
        f"{'phase':<28} {'spans':>8} {'wall_s':>12} {'self_s':>12} {'mean_ms':>12}",
    ]
    for row in document["phases"]:
        lines.append(
            f"{row['phase']:<28} {row['n_spans']:>8} "
            f"{row['wall_s']:>12.4f} {row['self_s']:>12.4f} {row['mean_ms']:>12.4f}"
        )
    for warning in document.get("warnings", ()):
        lines.append(f"warning: {warning}")
    return "\n".join(lines)


__all__ = [
    "TraceError",
    "load_trace",
    "render_summary_table",
    "summarize_trace",
    "trace_digest",
]
