"""Adapters mirroring existing telemetry objects into a metrics registry.

The legacy telemetry — :class:`repro.exec.EngineCounters` and
:class:`repro.service.stats.ServiceStats` — stays the source of truth;
these adapters register render-time callbacks that copy the current totals
into Prometheus families.  Nothing about the legacy objects or their JSON
forms changes, which is what keeps the CLI ``backend`` blocks and the
service ``/stats`` document byte-identical whether metrics are on or off.

Every ``bind_*`` function is a no-op when no registry is given and the
process-wide one (see :func:`repro.obs.metrics.enable`) is off — callers
bind unconditionally and pay nothing by default.  Binding is idempotent
per source object, so engines that share one counters object (cache
variants, the service's fleet-wide counters) register it once.
"""

from __future__ import annotations

from typing import Optional

from . import metrics
from .metrics import MetricsRegistry

#: The engine counter events mirrored into ``repro_engine_events_total``.
ENGINE_EVENTS = (
    "requests",
    "cache_hits",
    "backend_evaluations",
    "deduplicated",
    "batches",
)


def _resolve(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    return registry if registry is not None else metrics.get_registry()


def bind_engine_counters(
    counters, registry: Optional[MetricsRegistry] = None
) -> None:
    """Mirror an :class:`EngineCounters` into ``repro_engine_events_total``.

    Multiple distinct counters objects (one per independent engine family)
    are summed into one fleet-wide total per event — the same aggregation
    the service's ``/stats`` backend block performs.
    """
    registry = _resolve(registry)
    if registry is None:
        return
    sources = getattr(registry, "_engine_sources", None)
    if sources is None:
        sources = []
        registry._engine_sources = sources
        family = registry.counter(
            "repro_engine_events_total",
            "Execution engine events (requests, cache hits, backend "
            "evaluations, in-flight deduplications, batches).",
            ("event",),
        )

        def mirror() -> None:
            totals = dict.fromkeys(ENGINE_EVENTS, 0)
            for source in sources:
                snap = source.snapshot()
                for event in ENGINE_EVENTS:
                    totals[event] += getattr(snap, f"n_{event}")
            for event, total in totals.items():
                # Mirroring absolute totals: the source counters are
                # monotonic, so direct assignment keeps the family honest.
                family.labels(event=event).value = float(total)

        registry.register_callback(mirror, key="engine_counters")
    if not any(source is counters for source in sources):
        sources.append(counters)


def bind_service_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Mirror a :class:`ServiceStats` into per-endpoint request families."""
    registry = _resolve(registry)
    if registry is None:
        return
    requests_family = registry.counter(
        "repro_requests_total",
        "HTTP requests served, by endpoint.",
        ("endpoint",),
    )
    errors_family = registry.counter(
        "repro_request_errors_total",
        "HTTP requests answered with an error status, by endpoint.",
        ("endpoint",),
    )
    occupancy_family = registry.gauge(
        "repro_latency_ring_occupancy",
        "Latency samples currently held in the per-endpoint ring.",
        ("endpoint",),
    )
    uptime_family = registry.gauge(
        "repro_service_uptime_seconds",
        "Seconds since the service started.",
    )

    def mirror() -> None:
        uptime_family.set(stats.uptime_s)
        for route, endpoint in stats._endpoints.items():
            requests_family.labels(endpoint=route).value = float(
                endpoint.n_requests
            )
            errors_family.labels(endpoint=route).value = float(endpoint.n_errors)
            occupancy_family.labels(endpoint=route).set(len(endpoint.latencies_s))

    registry.register_callback(mirror, key=("service_stats", id(stats)))


def build_info(version: str, registry: Optional[MetricsRegistry] = None) -> None:
    """Expose ``repro_build_info{version=...} 1`` on the registry."""
    registry = _resolve(registry)
    if registry is None:
        return
    registry.gauge(
        "repro_build_info",
        "Build information for the repro-bram-undervolting package.",
        ("version",),
    ).labels(version=version).set(1.0)


__all__ = [
    "ENGINE_EVENTS",
    "bind_engine_counters",
    "bind_service_stats",
    "build_info",
]
