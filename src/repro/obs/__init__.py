"""``repro.obs``: the unified observability layer.

Three pieces, all stdlib-only:

* **metrics** (:mod:`repro.obs.metrics`) — a Prometheus-style registry of
  counters, gauges and fixed-bucket histograms, off by default; the
  service's ``/metrics`` endpoint and the CLI's ``--obs-metrics`` dump
  render it as text exposition format.  :mod:`repro.obs.adapters` mirrors
  the legacy telemetry objects in without changing their JSON forms.
* **tracing** (:mod:`repro.obs.trace`) — ``obs.span("campaign.unit",
  unit=uid)`` around instrumented work, written to bounded JSON-lines
  trace files by ``--obs-trace``; the default recorder is a shared no-op
  so uninstrumented runs pay nothing.
* **analysis** (:mod:`repro.obs.summarize`) — ``repro-undervolt trace
  summarize`` renders a trace into a per-phase wall/self-time table with a
  deterministic-when-stripped digest.

See ``docs/observability.md`` for the metric families and span taxonomy.
"""

from .adapters import (
    ENGINE_EVENTS,
    bind_engine_counters,
    bind_service_stats,
    build_info,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    active,
    disable,
    enable,
    get_registry,
)
from .progress import EventStream, ProgressEvent, callback_shim
from .summarize import (
    TraceError,
    load_trace,
    render_summary_table,
    summarize_trace,
    trace_digest,
)
from .trace import (
    NULL_RECORDER,
    JsonlTraceRecorder,
    NullRecorder,
    event,
    get_recorder,
    install_trace,
    reset_recorder,
    set_recorder,
    span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "ENGINE_EVENTS",
    "EventStream",
    "JsonlTraceRecorder",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ProgressEvent",
    "TraceError",
    "active",
    "bind_engine_counters",
    "bind_service_stats",
    "build_info",
    "callback_shim",
    "disable",
    "enable",
    "event",
    "get_recorder",
    "get_registry",
    "install_trace",
    "load_trace",
    "render_summary_table",
    "reset_recorder",
    "set_recorder",
    "span",
    "summarize_trace",
    "trace_digest",
]
