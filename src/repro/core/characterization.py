"""Fault-characterization studies of Section II-C.

The paper characterizes the undervolting faults along four axes:

1. **data-pattern dependence** (Fig. 4) — the fault rate tracks the number of
   stored ``1`` bits because almost all faults are ``1 -> 0`` flips;
2. **stability over time** (Table II) — 100 consecutive reads at the same
   voltage give nearly identical rates and identical locations;
3. **variability among BRAMs** (Fig. 5) — per-BRAM rates are heavily skewed,
   with a large never-faulty group;
4. **flip direction** — 99.9 % of faults are ``1 -> 0``.

Each study here is a pure function over a :class:`repro.core.faultmodel.FaultField`
(plus parameters), returning small result dataclasses that the harness, the
benchmarks and the tests all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .faultmodel import FaultField
from .temperature import REFERENCE_TEMPERATURE_C

#: The data patterns studied in Fig. 4, in the order the figure lists them.
STUDY_PATTERNS: Tuple[str, ...] = ("FFFF", "AAAA", "5555", "random50", "0000")


class CharacterizationError(ValueError):
    """Raised for invalid characterization-study parameters."""


# ----------------------------------------------------------------------
# 1. Data-pattern dependence (Fig. 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternStudyResult:
    """Fault rate per Mbit for each studied data pattern."""

    voltage_v: float
    rates_per_mbit: Dict[str, float]

    def rate(self, pattern: str) -> float:
        """Rate for one pattern name."""
        try:
            return self.rates_per_mbit[pattern]
        except KeyError as exc:
            raise CharacterizationError(f"pattern {pattern!r} was not studied") from exc

    def ratio(self, pattern_a: str, pattern_b: str) -> float:
        """Rate ratio between two patterns (paper: FFFF is ~2x AAAA)."""
        denominator = self.rate(pattern_b)
        if denominator == 0:
            return float("inf") if self.rate(pattern_a) > 0 else 1.0
        return self.rate(pattern_a) / denominator


def pattern_study(
    field: FaultField,
    voltage_v: float,
    patterns: Sequence[str] = STUDY_PATTERNS,
    temperature_c: float = REFERENCE_TEMPERATURE_C,
) -> PatternStudyResult:
    """Measure the chip fault rate for each initial data pattern (Fig. 4)."""
    if not patterns:
        raise CharacterizationError("at least one pattern is required")
    rates = {
        pattern: field.chip_fault_rate_per_mbit(
            voltage_v, temperature_c=temperature_c, pattern=pattern
        )
        for pattern in patterns
    }
    return PatternStudyResult(voltage_v=voltage_v, rates_per_mbit=rates)


# ----------------------------------------------------------------------
# 2. Stability over time (Table II)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StabilityStudyResult:
    """Statistics of the fault rate over repeated runs at a fixed voltage."""

    voltage_v: float
    n_runs: int
    rates_per_mbit: Tuple[float, ...]
    location_overlap: float

    @property
    def average(self) -> float:
        """Mean fault rate over the runs (Table II row "AVERAGE")."""
        return float(np.mean(self.rates_per_mbit))

    @property
    def minimum(self) -> float:
        """Minimum fault rate over the runs."""
        return float(np.min(self.rates_per_mbit))

    @property
    def maximum(self) -> float:
        """Maximum fault rate over the runs."""
        return float(np.max(self.rates_per_mbit))

    @property
    def std_dev(self) -> float:
        """Standard deviation of the fault rate over the runs."""
        return float(np.std(self.rates_per_mbit))

    def as_table_row(self) -> Dict[str, float]:
        """Table II-style summary for one platform."""
        return {
            "AVERAGE fault rate": self.average,
            "MINIMUM fault rate": self.minimum,
            "MAXIMUM fault rate": self.maximum,
            "STD. DEV of fault rates": self.std_dev,
        }


def stability_study(
    field: FaultField,
    voltage_v: float,
    n_runs: int = 100,
    temperature_c: float = REFERENCE_TEMPERATURE_C,
    pattern: str = "FFFF",
    location_sample_brams: int = 64,
) -> StabilityStudyResult:
    """Repeat the read-back ``n_runs`` times and summarize the rate stability.

    ``location_overlap`` is the mean Jaccard similarity between the fault
    locations of the first run and each later run over a sample of BRAMs;
    the paper observes that locations "do not change over time", i.e. the
    overlap stays close to 1.
    """
    if n_runs < 2:
        raise CharacterizationError("a stability study needs at least two runs")
    counts = field.counts_over_runs(voltage_v, n_runs, temperature_c=temperature_c, pattern=pattern)
    rates = tuple(float(c) / field.chip.brams.total_mbits for c in counts)

    # Location stability over a deterministic sample of the most vulnerable BRAMs.
    per_bram = field.per_bram_counts(voltage_v, temperature_c=temperature_c, pattern=pattern)
    sample = np.argsort(per_bram)[::-1][:location_sample_brams]
    overlaps: List[float] = []
    reference: Dict[int, set] = {}
    for bram_index in sample:
        records = field.fault_sites(
            int(bram_index), voltage_v, temperature_c=temperature_c, run_index=0, pattern=pattern
        )
        reference[int(bram_index)] = {(r.row, r.col) for r in records}
    for run in (1, max(1, n_runs // 2), n_runs - 1):
        for bram_index in sample:
            records = field.fault_sites(
                int(bram_index), voltage_v, temperature_c=temperature_c, run_index=run, pattern=pattern
            )
            observed = {(r.row, r.col) for r in records}
            expected = reference[int(bram_index)]
            union = observed | expected
            if union:
                overlaps.append(len(observed & expected) / len(union))
    overlap = float(np.mean(overlaps)) if overlaps else 1.0
    return StabilityStudyResult(
        voltage_v=voltage_v,
        n_runs=n_runs,
        rates_per_mbit=rates,
        location_overlap=overlap,
    )


# ----------------------------------------------------------------------
# 3. Variability among BRAMs (Fig. 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VariabilityStudyResult:
    """Per-BRAM fault-rate dispersion at one voltage."""

    voltage_v: float
    per_bram_counts: Tuple[int, ...]
    bram_bits: int

    @property
    def max_percent(self) -> float:
        """Highest per-BRAM fault rate in percent (paper: 2.84 % on VC707)."""
        return 100.0 * max(self.per_bram_counts) / self.bram_bits

    @property
    def min_percent(self) -> float:
        """Lowest per-BRAM fault rate in percent (paper: 0 %)."""
        return 100.0 * min(self.per_bram_counts) / self.bram_bits

    @property
    def mean_percent(self) -> float:
        """Average per-BRAM fault rate in percent (paper: 0.04 % on VC707)."""
        return 100.0 * float(np.mean(self.per_bram_counts)) / self.bram_bits

    @property
    def never_faulty_fraction(self) -> float:
        """Fraction of BRAMs with zero faults at this voltage."""
        counts = np.asarray(self.per_bram_counts)
        return float(np.mean(counts == 0))

    def gini_coefficient(self) -> float:
        """Gini coefficient of the per-BRAM counts (1 = maximally skewed).

        Not reported by the paper, but a convenient scalar for tests to assert
        the "fully non-uniform" claim.
        """
        counts = np.sort(np.asarray(self.per_bram_counts, dtype=float))
        total = counts.sum()
        if total == 0:
            return 0.0
        n = len(counts)
        cumulative = np.cumsum(counts)
        return float((n + 1 - 2 * (cumulative / total).sum()) / n)


def variability_study(
    field: FaultField,
    voltage_v: float,
    temperature_c: float = REFERENCE_TEMPERATURE_C,
    pattern: str = "FFFF",
) -> VariabilityStudyResult:
    """Per-BRAM fault-count dispersion at one voltage (Fig. 5's raw data)."""
    counts = field.per_bram_counts(voltage_v, temperature_c=temperature_c, pattern=pattern)
    return VariabilityStudyResult(
        voltage_v=voltage_v,
        per_bram_counts=tuple(int(c) for c in counts),
        bram_bits=field.chip.spec.bram_rows * field.chip.spec.bram_cols,
    )


# ----------------------------------------------------------------------
# 4. Flip-direction study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlipDirectionResult:
    """Share of ``1 -> 0`` versus ``0 -> 1`` faults."""

    one_to_zero: int
    zero_to_one: int

    @property
    def one_to_zero_fraction(self) -> float:
        """Fraction of faults that are ``1 -> 0`` (paper: 99.9 %)."""
        total = self.one_to_zero + self.zero_to_one
        if total == 0:
            return 1.0
        return self.one_to_zero / total


def flip_direction_study(
    field: FaultField,
    voltage_v: float,
    temperature_c: float = REFERENCE_TEMPERATURE_C,
) -> FlipDirectionResult:
    """Count flip directions with a mixed pattern so both directions can fire.

    The study uses the 0xAAAA pattern (alternating bits) so that both
    ``1 -> 0`` and ``0 -> 1`` vulnerable cells have stored values they can
    corrupt, then counts each direction across the chip.
    """
    one_to_zero = 0
    zero_to_one = 0
    for bram_index in range(field.chip.spec.n_brams):
        for record in field.fault_sites(
            bram_index, voltage_v, temperature_c=temperature_c, pattern="AAAA"
        ):
            if record.is_one_to_zero:
                one_to_zero += 1
            else:
                zero_to_one += 1
    return FlipDirectionResult(one_to_zero=one_to_zero, zero_to_one=zero_to_one)
