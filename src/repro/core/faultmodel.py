"""Bitcell-level undervolting fault model.

This is the centre of the reproduction.  On silicon, lowering ``VCCBRAM``
below ``Vmin`` slows the BRAM bitcells and sense paths until some cells no
longer read correctly; which cells fail, and at which voltage, is fixed by the
chip's process variation, which is why the paper finds the faults
*deterministic*, *location-stable*, overwhelmingly *1 -> 0*, and *non-uniform*
across BRAMs, with hotter silicon failing less (ITD).

The model assigns every vulnerable bitcell a **failure voltage** ``Vf``:
the cell misreads whenever the effective supply voltage (actual voltage plus
the ITD temperature shift plus a tiny per-run supply ripple) is below ``Vf``.
The population of vulnerable cells is constructed deterministically from the
chip seed so that:

* the chip-level fault rate follows the calibrated exponential
  ``R(V) = R_crash * exp(-k (V - Vcrash))`` between ``Vmin`` and ``Vcrash``;
* per-BRAM counts follow the heavy-tailed process-variation weights of
  :class:`repro.core.variation.ProcessVariationField`;
* 99.9 % of vulnerable cells fail as ``1 -> 0`` and the rest as ``0 -> 1``;
* re-building the field for the same chip yields the identical map, while a
  different serial number (die) yields an unrelated map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.fpga.bram import data_pattern
from repro.fpga.platform import FpgaChip

from .calibration import PlatformCalibration, get_calibration
from .temperature import REFERENCE_TEMPERATURE_C, ItdModel
from .variation import ProcessVariationField, VariationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .batch import BatchFaultEvaluator


class FaultModelError(ValueError):
    """Raised for invalid fault-model queries."""


@dataclass(frozen=True)
class FaultModelConfig:
    """Feature switches of the fault model, used by the ablation benchmarks.

    Attributes
    ----------
    temperature_enabled:
        Apply the ITD voltage shift.  Disabling reproduces a naive model in
        which temperature has no effect on the fault rate.
    ripple_enabled:
        Apply the per-run supply ripple that creates the small run-to-run
        spread of Table II.  Disabling makes every run bit-identical.
    die_to_die_enabled:
        Seed the variation field from the board serial number.  Disabling
        seeds it from the platform name only, so two boards of the same part
        number become indistinguishable (the ablation for Fig. 7).
    spatial_variation_enabled:
        Keep the within-die systematic component.  Disabling spreads faults
        uniformly over BRAMs (the ablation for Figs. 5 and 6).
    """

    temperature_enabled: bool = True
    ripple_enabled: bool = True
    die_to_die_enabled: bool = True
    spatial_variation_enabled: bool = True


@dataclass
class BramFaultProfile:
    """The vulnerable bitcells of one BRAM and their failure voltages."""

    bram_index: int
    rows: np.ndarray
    cols: np.ndarray
    failure_voltages_v: np.ndarray
    one_to_zero: np.ndarray

    def __post_init__(self) -> None:
        lengths = {len(self.rows), len(self.cols), len(self.failure_voltages_v), len(self.one_to_zero)}
        if len(lengths) != 1:
            raise FaultModelError("profile arrays must have equal length")

    @property
    def n_vulnerable(self) -> int:
        """Number of vulnerable bitcells in this BRAM."""
        return len(self.rows)

    def is_empty(self) -> bool:
        """Whether this BRAM never faults at any studied voltage."""
        return self.n_vulnerable == 0


@dataclass(frozen=True)
class FaultRecord:
    """One observed bit fault: where it happened and which way it flipped."""

    bram_index: int
    row: int
    col: int
    expected_bit: int
    observed_bit: int

    @property
    def is_one_to_zero(self) -> bool:
        """Whether this fault is a ``1 -> 0`` flip."""
        return self.expected_bit == 1 and self.observed_bit == 0


class FaultField:
    """Deterministic undervolting fault field for one chip.

    Parameters
    ----------
    chip:
        The chip instance whose BRAMs this field corrupts.
    calibration:
        Platform calibration; defaults to the published calibration for the
        chip's platform.
    variation_config:
        Override of the within-die variation knobs; by default derived from
        the calibration (never-faulty fraction and log-normal sigma).
    config:
        Feature switches, see :class:`FaultModelConfig`.
    """

    def __init__(
        self,
        chip: FpgaChip,
        calibration: Optional[PlatformCalibration] = None,
        variation_config: Optional[VariationConfig] = None,
        config: Optional[FaultModelConfig] = None,
    ) -> None:
        self.chip = chip
        self.calibration = calibration or get_calibration(chip.spec)
        self.config = config or FaultModelConfig()
        if variation_config is None:
            variation_config = VariationConfig(
                never_faulty_fraction=self.calibration.never_faulty_fraction,
                lognormal_sigma=self.calibration.vulnerability_sigma,
                spatial_strength=0.6 if self.config.spatial_variation_enabled else 0.0,
                spatial_components=4 if self.config.spatial_variation_enabled else 0,
            )
        if self.config.die_to_die_enabled:
            seed = chip.seed
        else:
            # Ablation: seed from the part number only, so two boards with the
            # same chip model share one variation map.  hashlib keeps the seed
            # stable across processes (unlike the built-in str hash).
            import hashlib

            digest = hashlib.sha256(chip.spec.chip_model.encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
        self.variation = ProcessVariationField(chip.floorplan, seed=seed, config=variation_config)
        self.itd = ItdModel(
            v_per_degc=self.calibration.itd_v_per_degc if self.config.temperature_enabled else 0.0
        )
        self._profiles: Dict[int, BramFaultProfile] = {}
        self._rng_root = np.random.default_rng(seed ^ 0x5EEDF00D)
        self._per_bram_seeds = self._rng_root.integers(0, 2**63 - 1, size=chip.spec.n_brams)
        self._batch = None

    @property
    def batch(self) -> "BatchFaultEvaluator":
        """Vectorized grid evaluator over this field (built lazily, cached).

        All aggregate queries below (:meth:`per_bram_counts`,
        :meth:`chip_fault_count`, :meth:`counts_over_runs`, ...) delegate to
        it; use it directly to evaluate whole (voltage x temperature x run)
        grids in one call — see :mod:`repro.core.batch`.
        """
        if self._batch is None:
            from .batch import BatchFaultEvaluator

            self._batch = BatchFaultEvaluator(self)
        return self._batch

    # ------------------------------------------------------------------
    # Calibrated scalars
    # ------------------------------------------------------------------
    @property
    def threshold_margin_v(self) -> float:
        """How far below ``Vcrash`` the failure-voltage population extends.

        The margin gives the per-run supply ripple symmetric headroom at
        ``Vcrash``: without it, a negative ripple could never add faults and
        the run-to-run spread of Table II would be biased low.
        """
        return 6.0 * self.calibration.ripple_sigma_v

    @property
    def total_vulnerable_cells(self) -> float:
        """Expected number of vulnerable bitcells on the whole chip.

        Slightly larger than ``R_crash * Mbits`` because the population
        extends :attr:`threshold_margin_v` below ``Vcrash``; the cells in that
        margin only ever fire through ripple.
        """
        base = self.calibration.fault_rate_at_vcrash_per_mbit * self.chip.brams.total_mbits
        return base * math.exp(self.slope_per_v * self.threshold_margin_v)

    @property
    def slope_per_v(self) -> float:
        """Exponential slope ``k`` of the calibrated rate curve."""
        return self.calibration.exponential_slope_per_v

    def effective_voltage(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> float:
        """Voltage the bitcells effectively see for a (V, T, run) operating point."""
        voltage = self.itd.effective_voltage(vccbram_v, temperature_c)
        if run_index is not None and self.config.ripple_enabled:
            voltage += self.ripple_v(run_index)
        return voltage

    def ripple_v(self, run_index: int) -> float:
        """Deterministic per-run supply ripple (Table II's run-to-run spread)."""
        if not self.config.ripple_enabled:
            return 0.0
        rng = np.random.default_rng((self.variation.seed * 1_000_003 + int(run_index)) & (2**63 - 1))
        return float(rng.normal(0.0, self.calibration.ripple_sigma_v))

    def analytic_rate_per_mbit(
        self, vccbram_v: float, temperature_c: float = REFERENCE_TEMPERATURE_C
    ) -> float:
        """Closed-form chip-level fault rate for pattern ``0xFFFF``."""
        if not self.config.temperature_enabled:
            temperature_c = REFERENCE_TEMPERATURE_C
        return self.calibration.rate_per_mbit(vccbram_v, temperature_c)

    # ------------------------------------------------------------------
    # Profile construction
    # ------------------------------------------------------------------
    def profile(self, bram_index: int) -> BramFaultProfile:
        """Vulnerable-cell profile of one BRAM (deterministic, cached)."""
        if not 0 <= bram_index < self.chip.spec.n_brams:
            raise FaultModelError(f"BRAM index {bram_index} out of range")
        cached = self._profiles.get(bram_index)
        if cached is not None:
            return cached
        profile = self._build_profile(bram_index)
        self._profiles[bram_index] = profile
        return profile

    def _build_profile(self, bram_index: int) -> BramFaultProfile:
        cal = self.calibration
        expected = self.variation.weight_of(bram_index) * self.total_vulnerable_cells
        rng = np.random.default_rng(int(self._per_bram_seeds[bram_index]))

        # Deterministic rounding of the expected cell count.
        n_cells = int(math.floor(expected))
        if rng.random() < (expected - n_cells):
            n_cells += 1

        n_bits = self.chip.spec.bram_rows * self.chip.spec.bram_cols
        n_cells = min(n_cells, n_bits)
        if n_cells == 0:
            empty = np.array([], dtype=np.int64)
            return BramFaultProfile(
                bram_index=bram_index,
                rows=empty,
                cols=empty.copy(),
                failure_voltages_v=np.array([], dtype=float),
                one_to_zero=np.array([], dtype=bool),
            )

        flat = rng.choice(n_bits, size=n_cells, replace=False)
        rows = flat // self.chip.spec.bram_cols
        cols = flat % self.chip.spec.bram_cols

        # Failure voltages by inverse transform of the exponential rate curve,
        # spanning [Vcrash - margin, Vmin) so ripple stays symmetric at Vcrash.
        k = cal.exponential_slope_per_v
        floor_v = cal.vcrash_bram_v - self.threshold_margin_v
        u_min = math.exp(-k * (cal.vmin_bram_v - floor_v))
        u = rng.uniform(u_min, 1.0, size=n_cells)
        thresholds = floor_v - np.log(u) / k

        one_to_zero = rng.random(n_cells) < cal.one_to_zero_fraction
        return BramFaultProfile(
            bram_index=bram_index,
            rows=rows.astype(np.int64),
            cols=cols.astype(np.int64),
            failure_voltages_v=thresholds,
            one_to_zero=one_to_zero,
        )

    def profiles(self, bram_indices: Optional[Iterable[int]] = None) -> List[BramFaultProfile]:
        """Profiles for several BRAMs (all of them by default)."""
        if bram_indices is None:
            bram_indices = range(self.chip.spec.n_brams)
        return [self.profile(i) for i in bram_indices]

    # ------------------------------------------------------------------
    # Fault queries
    # ------------------------------------------------------------------
    @staticmethod
    def _pattern_bits(pattern: "str | int") -> np.ndarray:
        """Column-indexed stored bit for a repeating 16-bit pattern."""
        image = data_pattern(pattern, rows=1)
        return image[0].astype(np.uint8)

    def _firing_mask(
        self,
        profile: BramFaultProfile,
        effective_v: float,
        stored_bits: Optional[np.ndarray],
        pattern_bits: Optional[np.ndarray],
    ) -> np.ndarray:
        """Boolean mask of profile cells that produce an observable fault."""
        if profile.is_empty():
            return np.zeros(0, dtype=bool)
        active = profile.failure_voltages_v > effective_v
        if not active.any():
            return active
        if stored_bits is not None:
            stored = stored_bits[profile.rows, profile.cols].astype(bool)
        elif pattern_bits is not None:
            stored = pattern_bits[profile.cols].astype(bool)
        else:
            stored = np.ones(profile.n_vulnerable, dtype=bool)
        observable = np.where(profile.one_to_zero, stored, ~stored)
        return active & observable

    def fault_sites(
        self,
        bram_index: int,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
        stored_bits: Optional[np.ndarray] = None,
        pattern: "str | int | None" = 0xFFFF,
    ) -> List[FaultRecord]:
        """Observable faults in one BRAM at an operating point.

        ``stored_bits`` (a full bit image) takes precedence over ``pattern``;
        with neither, every active vulnerable cell is reported as if it held
        the value it is sensitive to.
        """
        profile = self.profile(bram_index)
        effective_v = self.effective_voltage(vccbram_v, temperature_c, run_index)
        pattern_bits = self._pattern_bits(pattern) if (stored_bits is None and pattern is not None) else None
        mask = self._firing_mask(profile, effective_v, stored_bits, pattern_bits)
        records: List[FaultRecord] = []
        for idx in np.flatnonzero(mask):
            expected = 1 if profile.one_to_zero[idx] else 0
            records.append(
                FaultRecord(
                    bram_index=bram_index,
                    row=int(profile.rows[idx]),
                    col=int(profile.cols[idx]),
                    expected_bit=expected,
                    observed_bit=1 - expected,
                )
            )
        return records

    def count_bram_faults(
        self,
        bram_index: int,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
        stored_bits: Optional[np.ndarray] = None,
        pattern: "str | int | None" = 0xFFFF,
    ) -> int:
        """Number of observable faults in one BRAM at an operating point."""
        profile = self.profile(bram_index)
        effective_v = self.effective_voltage(vccbram_v, temperature_c, run_index)
        pattern_bits = self._pattern_bits(pattern) if (stored_bits is None and pattern is not None) else None
        return int(self._firing_mask(profile, effective_v, stored_bits, pattern_bits).sum())

    def per_bram_counts(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
        pattern: "str | int" = 0xFFFF,
        bram_indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Observable fault count per BRAM for a repeating-word pattern."""
        if bram_indices is not None:
            # Subset queries stay on the lazy per-profile path so they only
            # materialize (and range-check) the BRAMs actually asked for.
            indices = list(bram_indices)
            effective_v = self.effective_voltage(vccbram_v, temperature_c, run_index)
            pattern_bits = self._pattern_bits(pattern)
            counts = np.zeros(len(indices), dtype=np.int64)
            for slot, index in enumerate(indices):
                profile = self.profile(index)
                counts[slot] = int(
                    self._firing_mask(profile, effective_v, None, pattern_bits).sum()
                )
            return counts
        from .batch import OperatingGrid

        grid = OperatingGrid.single(vccbram_v, temperature_c, run_index)
        return self.batch.per_bram_counts(grid, pattern)[0, 0, 0]

    def chip_fault_count(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
        pattern: "str | int" = 0xFFFF,
    ) -> int:
        """Total observable faults across the whole chip."""
        from .batch import OperatingGrid

        grid = OperatingGrid.single(vccbram_v, temperature_c, run_index)
        return int(self.batch.chip_counts(grid, pattern)[0, 0, 0])

    def chip_fault_rate_per_mbit(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
        pattern: "str | int" = 0xFFFF,
    ) -> float:
        """Observable fault rate in faults per Mbit, the paper's reporting unit."""
        count = self.chip_fault_count(vccbram_v, temperature_c, run_index, pattern)
        return count / self.chip.brams.total_mbits

    def counts_over_runs(
        self,
        vccbram_v: float,
        n_runs: int,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        pattern: "str | int" = 0xFFFF,
    ) -> np.ndarray:
        """Chip-level fault counts for ``n_runs`` consecutive runs.

        Fully vectorized through the batch engine: one sorted-threshold
        ``searchsorted`` covers every run at once (see
        :meth:`repro.core.batch.BatchFaultEvaluator.chip_counts`).
        """
        if n_runs <= 0:
            raise FaultModelError("n_runs must be positive")
        from .batch import OperatingGrid

        grid = OperatingGrid(
            voltages_v=(vccbram_v,),
            temperatures_c=(temperature_c,),
            run_indices=tuple(range(n_runs)),
        )
        return self.batch.chip_counts(grid, pattern)[0, 0, :]

    # ------------------------------------------------------------------
    # Read-back corruption
    # ------------------------------------------------------------------
    def observed_image(
        self,
        bram_index: int,
        stored_bits: np.ndarray,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> np.ndarray:
        """Corrupted read-back image of one BRAM holding ``stored_bits``."""
        stored_bits = np.asarray(stored_bits, dtype=np.uint8)
        expected_shape = (self.chip.spec.bram_rows, self.chip.spec.bram_cols)
        if stored_bits.shape != expected_shape:
            raise FaultModelError(
                f"stored image shape {stored_bits.shape} does not match BRAM geometry {expected_shape}"
            )
        profile = self.profile(bram_index)
        effective_v = self.effective_voltage(vccbram_v, temperature_c, run_index)
        mask = self._firing_mask(profile, effective_v, stored_bits, None)
        observed = stored_bits.copy()
        for idx in np.flatnonzero(mask):
            row, col = int(profile.rows[idx]), int(profile.cols[idx])
            observed[row, col] = 0 if profile.one_to_zero[idx] else 1
        return observed

    def corrupt_words(
        self,
        bram_index: int,
        words: Sequence[int],
        vccbram_v: float,
        start_row: int = 0,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> List[int]:
        """Corrupt a run of 16-bit words stored at ``start_row`` of one BRAM.

        This is the path the NN accelerator uses: weight words live at known
        BRAM rows and the fault field flips the bits the hardware would flip.
        """
        cols = self.chip.spec.bram_cols
        profile = self.profile(bram_index)
        effective_v = self.effective_voltage(vccbram_v, temperature_c, run_index)
        corrupted = list(int(w) for w in words)
        if profile.is_empty():
            return corrupted
        active = profile.failure_voltages_v > effective_v
        for idx in np.flatnonzero(active):
            row = int(profile.rows[idx])
            offset = row - start_row
            if not 0 <= offset < len(corrupted):
                continue
            bit_position = cols - 1 - int(profile.cols[idx])
            word = corrupted[offset]
            stored_bit = (word >> bit_position) & 1
            if profile.one_to_zero[idx] and stored_bit == 1:
                corrupted[offset] = word & ~(1 << bit_position)
            elif not profile.one_to_zero[idx] and stored_bit == 0:
                corrupted[offset] = word | (1 << bit_position)
        return corrupted

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def never_faulty_fraction(self) -> float:
        """Fraction of BRAMs without a single vulnerable cell."""
        cells = self.batch.table.cells_per_bram()
        return float(np.mean(cells == 0))

    def one_to_zero_fraction(self) -> float:
        """Fraction of vulnerable cells that fail ``1 -> 0`` (paper: 99.9 %)."""
        table = self.batch.table
        if table.n_cells == 0:
            return 1.0
        return float(table.one_to_zero.sum()) / table.n_cells
