"""Per-platform calibration of the undervolting behavioural model.

The paper is a measurement study; the reproduction replaces the silicon with
a behavioural model whose constants are *calibrated to the numbers the paper
publishes*.  This module is the single place those constants live, so every
experiment, test and benchmark draws from the same source of truth and
EXPERIMENTS.md can point here for the paper-vs-model mapping.

Published anchors used for calibration (all from the paper text and figures):

* Nominal voltage 1.0 V on every board; average ``VCCBRAM`` guardband 39 %
  and ``VCCINT`` guardband 34 % (Fig. 1); VC707 ``Vmin`` = 0.61 V and
  ``Vcrash`` = 0.54 V (Section II-C / Fig. 6).
* Fault rates at ``Vcrash`` with pattern ``0xFFFF``: 652, 153, 254 and 60
  faults per Mbit for VC707, ZC702, KC705-A and KC705-B (Fig. 3).
* Run-to-run standard deviation of the fault rate: 7.3, 5.9, 4.8 and 1.8
  faults per Mbit (Table II).
* 99.9 % of faults are ``1 -> 0`` flips (Section II-C-1).
* 38.9 % of VC707 BRAMs never fault even at ``Vcrash``; per-BRAM rates span
  0 %–2.84 % with an 0.04 % average; 88.6 % of BRAMs are low-vulnerable with
  an 0.02 % average (Fig. 5).
* Heating from 50 °C to 80 °C cuts the VC707 fault rate by more than 3x; the
  VC707/KC705-A ratio moves from +156 % at 50 °C to −11.6 % at 80 °C
  (Fig. 8, ITD).
* BRAM power drops by more than an order of magnitude from ``Vnom`` to
  ``Vmin`` and by a further ~40 % from ``Vmin`` to ``Vcrash`` (Figs. 3, 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fpga.platform import PlatformSpec, get_platform


class CalibrationError(ValueError):
    """Raised when calibration constants are inconsistent."""


@dataclass(frozen=True)
class PlatformCalibration:
    """Calibrated undervolting constants for one board.

    Attributes
    ----------
    platform:
        Board name matching :mod:`repro.fpga.platform`.
    vnom_v:
        Nominal supply voltage of both studied rails.
    vmin_bram_v / vcrash_bram_v:
        Minimum safe voltage and crash voltage of ``VCCBRAM``.
    vmin_int_v / vcrash_int_v:
        The same thresholds for ``VCCINT``.
    fault_rate_at_vcrash_per_mbit:
        Chip-level fault rate at ``Vcrash`` with pattern ``0xFFFF`` at the
        default 50 °C board temperature.
    onset_rate_per_mbit:
        Fault rate one voltage step below ``Vmin`` (sets the exponential
        slope together with the crash-rate anchor).
    run_std_per_mbit:
        Run-to-run standard deviation of the fault rate at ``Vcrash``
        (Table II).
    never_faulty_fraction:
        Fraction of BRAMs with no vulnerable bitcell at all.
    one_to_zero_fraction:
        Fraction of vulnerable cells that fail as ``1 -> 0`` flips.
    itd_v_per_degc:
        Inverse-Thermal-Dependence coefficient: equivalent upward shift of
        the supply voltage per additional degree Celsius.
    power_gamma_per_v:
        Exponential slope of rail power versus voltage.
    bram_power_nominal_w:
        Absolute BRAM rail power at nominal voltage (sets the scale of the
        Fig. 3 power curves; ZC702 is reported in mW in the paper).
    vulnerability_sigma:
        Log-normal sigma of the per-BRAM vulnerability weights (controls the
        heavy tail of Fig. 5).
    """

    platform: str
    vnom_v: float = 1.0
    vmin_bram_v: float = 0.61
    vcrash_bram_v: float = 0.54
    vmin_int_v: float = 0.66
    vcrash_int_v: float = 0.59
    fault_rate_at_vcrash_per_mbit: float = 100.0
    onset_rate_per_mbit: float = 2.0
    run_std_per_mbit: float = 5.0
    never_faulty_fraction: float = 0.40
    one_to_zero_fraction: float = 0.999
    itd_v_per_degc: float = 2.0e-4
    power_gamma_per_v: float = 7.3
    bram_power_nominal_w: float = 1.0
    vulnerability_sigma: float = 1.5

    def __post_init__(self) -> None:
        if not self.vcrash_bram_v < self.vmin_bram_v < self.vnom_v:
            raise CalibrationError(
                f"{self.platform}: expected Vcrash < Vmin < Vnom for VCCBRAM"
            )
        if not self.vcrash_int_v < self.vmin_int_v < self.vnom_v:
            raise CalibrationError(
                f"{self.platform}: expected Vcrash < Vmin < Vnom for VCCINT"
            )
        if self.fault_rate_at_vcrash_per_mbit <= 0:
            raise CalibrationError(f"{self.platform}: crash fault rate must be positive")
        if not 0 < self.onset_rate_per_mbit < self.fault_rate_at_vcrash_per_mbit:
            raise CalibrationError(
                f"{self.platform}: onset rate must lie strictly between 0 and the crash rate"
            )
        if not 0.0 <= self.never_faulty_fraction < 1.0:
            raise CalibrationError(f"{self.platform}: never_faulty_fraction must be in [0, 1)")
        if not 0.5 <= self.one_to_zero_fraction <= 1.0:
            raise CalibrationError(f"{self.platform}: one_to_zero_fraction must be in [0.5, 1]")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def guardband_bram_fraction(self) -> float:
        """Voltage guardband of VCCBRAM as a fraction of nominal (Fig. 1a)."""
        return (self.vnom_v - self.vmin_bram_v) / self.vnom_v

    @property
    def guardband_int_fraction(self) -> float:
        """Voltage guardband of VCCINT as a fraction of nominal (Fig. 1b)."""
        return (self.vnom_v - self.vmin_int_v) / self.vnom_v

    @property
    def critical_window_v(self) -> float:
        """Width of the CRITICAL region (Vmin - Vcrash) for VCCBRAM."""
        return self.vmin_bram_v - self.vcrash_bram_v

    @property
    def exponential_slope_per_v(self) -> float:
        """Slope ``k`` of ``R(V) = R_crash * exp(-k (V - Vcrash))``.

        Anchored so the rate equals ``onset_rate_per_mbit`` one step below
        ``Vmin`` and ``fault_rate_at_vcrash_per_mbit`` at ``Vcrash``.
        """
        return math.log(
            self.fault_rate_at_vcrash_per_mbit / self.onset_rate_per_mbit
        ) / self.critical_window_v

    @property
    def ripple_sigma_v(self) -> float:
        """Run-to-run supply-noise sigma reproducing Table II's rate spread.

        A small per-run voltage perturbation ``eps`` changes the expected
        fault rate by ``k * R * eps`` to first order, so the published rate
        standard deviation maps back to a voltage sigma.
        """
        slope = self.exponential_slope_per_v * self.fault_rate_at_vcrash_per_mbit
        return self.run_std_per_mbit / slope

    def rate_per_mbit(self, vccbram_v: float, temperature_c: float = 50.0) -> float:
        """Analytic chip-level fault rate (faults per Mbit) at a voltage.

        Above ``Vmin`` the rate is exactly zero (SAFE region); inside the
        critical region it follows the calibrated exponential; temperature is
        folded in through the ITD equivalent-voltage shift.  Below ``Vcrash``
        the device does not operate, but the analytic curve is still defined
        (extrapolated) so sweeps that probe one step too far get a finite
        number before the crash is detected.
        """
        effective_v = vccbram_v + self.itd_v_per_degc * (temperature_c - 50.0)
        if effective_v >= self.vmin_bram_v:
            return 0.0
        k = self.exponential_slope_per_v
        return self.fault_rate_at_vcrash_per_mbit * math.exp(
            -k * (effective_v - self.vcrash_bram_v)
        )


#: Calibrations for the four studied boards.  The BRAM-rail Vmin values are
#: chosen so the across-platform average guardband is the published 39 %, the
#: VCCINT values average to 34 %, and the remaining anchors follow the text.
CALIBRATIONS: Dict[str, PlatformCalibration] = {
    "VC707": PlatformCalibration(
        platform="VC707",
        vmin_bram_v=0.61,
        vcrash_bram_v=0.54,
        vmin_int_v=0.65,
        vcrash_int_v=0.58,
        fault_rate_at_vcrash_per_mbit=652.0,
        onset_rate_per_mbit=2.0,
        run_std_per_mbit=7.3,
        never_faulty_fraction=0.389,
        itd_v_per_degc=4.7e-4,
        power_gamma_per_v=7.3,
        bram_power_nominal_w=3.20,
        vulnerability_sigma=1.55,
    ),
    "ZC702": PlatformCalibration(
        platform="ZC702",
        vmin_bram_v=0.61,
        vcrash_bram_v=0.53,
        vmin_int_v=0.67,
        vcrash_int_v=0.60,
        fault_rate_at_vcrash_per_mbit=153.0,
        onset_rate_per_mbit=2.0,
        run_std_per_mbit=5.9,
        never_faulty_fraction=0.45,
        itd_v_per_degc=2.0e-4,
        power_gamma_per_v=6.8,
        bram_power_nominal_w=0.180,
        vulnerability_sigma=1.40,
    ),
    "KC705-A": PlatformCalibration(
        platform="KC705-A",
        vmin_bram_v=0.60,
        vcrash_bram_v=0.53,
        vmin_int_v=0.66,
        vcrash_int_v=0.59,
        fault_rate_at_vcrash_per_mbit=254.0,
        onset_rate_per_mbit=2.0,
        run_std_per_mbit=4.8,
        never_faulty_fraction=0.42,
        itd_v_per_degc=1.0e-4,
        power_gamma_per_v=7.0,
        bram_power_nominal_w=1.40,
        vulnerability_sigma=1.45,
    ),
    "KC705-B": PlatformCalibration(
        platform="KC705-B",
        vmin_bram_v=0.62,
        vcrash_bram_v=0.55,
        vmin_int_v=0.66,
        vcrash_int_v=0.59,
        fault_rate_at_vcrash_per_mbit=60.0,
        onset_rate_per_mbit=2.0,
        run_std_per_mbit=1.8,
        never_faulty_fraction=0.52,
        itd_v_per_degc=1.2e-4,
        power_gamma_per_v=7.0,
        bram_power_nominal_w=1.35,
        vulnerability_sigma=1.35,
    ),
}


def get_calibration(platform: "str | PlatformSpec") -> PlatformCalibration:
    """Calibration for one of the studied boards, by name or spec."""
    name = platform.name if isinstance(platform, PlatformSpec) else get_platform(platform).name
    try:
        return CALIBRATIONS[name]
    except KeyError as exc:  # pragma: no cover - get_platform already validates
        raise CalibrationError(f"no calibration for platform {name!r}") from exc


def average_guardband(rail: str = "VCCBRAM") -> float:
    """Average guardband fraction across the four boards (paper: 39 % / 34 %)."""
    if rail.upper() == "VCCBRAM":
        values = [cal.guardband_bram_fraction for cal in CALIBRATIONS.values()]
    elif rail.upper() == "VCCINT":
        values = [cal.guardband_int_fraction for cal in CALIBRATIONS.values()]
    else:
        raise CalibrationError(f"unknown rail {rail!r}; expected VCCBRAM or VCCINT")
    return sum(values) / len(values)


def voltage_regions(calibration: PlatformCalibration, rail: str = "VCCBRAM") -> Dict[str, Tuple[float, float]]:
    """The SAFE / CRITICAL / CRASH voltage regions of Fig. 1 for one board."""
    if rail.upper() == "VCCBRAM":
        vmin, vcrash = calibration.vmin_bram_v, calibration.vcrash_bram_v
    elif rail.upper() == "VCCINT":
        vmin, vcrash = calibration.vmin_int_v, calibration.vcrash_int_v
    else:
        raise CalibrationError(f"unknown rail {rail!r}; expected VCCBRAM or VCCINT")
    return {
        "SAFE": (vmin, calibration.vnom_v),
        "CRITICAL": (vcrash, vmin),
        "CRASH": (0.0, vcrash),
    }
