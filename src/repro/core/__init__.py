"""Core undervolting models: calibration, faults, power, FVM, clustering.

This subpackage is the reproduction of the paper's primary contribution — the
behavioural understanding of what happens to FPGA BRAMs when ``VCCBRAM`` is
pushed below the guardband.  It provides:

* the published per-platform calibration (:mod:`repro.core.calibration`);
* the deterministic bitcell fault model (:mod:`repro.core.faultmodel`) built
  on a process-variation field (:mod:`repro.core.variation`) and the ITD
  temperature model (:mod:`repro.core.temperature`);
* the voltage-scaling power model (:mod:`repro.core.power`);
* guardband detection, Fault Variation Maps, vulnerability clustering and the
  Section II-C characterization studies.
"""

from .batch import (
    BatchError,
    BatchFaultEvaluator,
    BatchGridResult,
    FlatFaultTable,
    OperatingGrid,
    cached_fault_field,
    clear_fault_field_cache,
    power_curve,
    voltage_ladder,
)
from .calibration import (
    CALIBRATIONS,
    CalibrationError,
    PlatformCalibration,
    average_guardband,
    get_calibration,
    voltage_regions,
)
from .characterization import (
    CharacterizationError,
    FlipDirectionResult,
    PatternStudyResult,
    STUDY_PATTERNS,
    StabilityStudyResult,
    VariabilityStudyResult,
    flip_direction_study,
    pattern_study,
    stability_study,
    variability_study,
)
from .clustering import (
    CLASS_NAMES,
    ClusteringError,
    ClusteringResult,
    VulnerabilityCluster,
    cluster_bram_vulnerability,
    low_vulnerable_indices,
)
from .faultmodel import (
    BramFaultProfile,
    FaultField,
    FaultModelConfig,
    FaultModelError,
    FaultRecord,
)
from .fvm import FaultVariationMap, FvmEntry, FvmError
from .guardband import (
    GuardbandError,
    GuardbandResult,
    SweepObservation,
    average_guardband_fraction,
    detect_guardband,
    power_saving_summary,
)
from .power import (
    PowerModelError,
    PowerSweepPoint,
    RailPowerModel,
    bram_power_model,
    power_sweep,
    summarize_savings,
    vccint_power_model,
)
from .temperature import (
    ItdModel,
    REFERENCE_TEMPERATURE_C,
    STUDY_TEMPERATURES_C,
    TemperatureError,
)
from .variation import ProcessVariationField, VariationConfig, VariationError

__all__ = [
    "CALIBRATIONS",
    "CLASS_NAMES",
    "BatchError",
    "BatchFaultEvaluator",
    "BatchGridResult",
    "BramFaultProfile",
    "CalibrationError",
    "CharacterizationError",
    "ClusteringError",
    "ClusteringResult",
    "FaultField",
    "FaultModelConfig",
    "FaultModelError",
    "FaultRecord",
    "FaultVariationMap",
    "FlatFaultTable",
    "FlipDirectionResult",
    "FvmEntry",
    "FvmError",
    "GuardbandError",
    "GuardbandResult",
    "ItdModel",
    "OperatingGrid",
    "PatternStudyResult",
    "PlatformCalibration",
    "PowerModelError",
    "PowerSweepPoint",
    "ProcessVariationField",
    "REFERENCE_TEMPERATURE_C",
    "RailPowerModel",
    "STUDY_PATTERNS",
    "STUDY_TEMPERATURES_C",
    "StabilityStudyResult",
    "SweepObservation",
    "TemperatureError",
    "VariabilityStudyResult",
    "VariationConfig",
    "VariationError",
    "VulnerabilityCluster",
    "average_guardband",
    "average_guardband_fraction",
    "bram_power_model",
    "cached_fault_field",
    "clear_fault_field_cache",
    "cluster_bram_vulnerability",
    "detect_guardband",
    "flip_direction_study",
    "get_calibration",
    "low_vulnerable_indices",
    "pattern_study",
    "power_curve",
    "power_saving_summary",
    "power_sweep",
    "stability_study",
    "summarize_savings",
    "variability_study",
    "vccint_power_model",
    "voltage_ladder",
    "voltage_regions",
]
