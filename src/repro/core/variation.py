"""Process-variation model for per-BRAM vulnerability.

The paper attributes two of its key findings to manufacturing process
variation:

* *within-die* variation — fault rates are fully non-uniform across the BRAMs
  of one chip (Fig. 5 / Fig. 6): a large fraction never fault at all, most
  fault rarely, and a small heavy tail faults heavily;
* *die-to-die* variation — two boards with the identical part number
  (KC705-A/B) show a 4.1x different fault rate and unrelated fault maps
  (Fig. 7).

This module produces the per-BRAM *vulnerability weights* that encode both
effects.  A weight is a non-negative number proportional to the expected
number of vulnerable bitcells in that BRAM; weights are deterministic
functions of the chip seed (derived from the board serial number) and the
BRAM's physical location, so re-building the field always yields the same
map — the determinism the ICBP mitigation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fpga.floorplan import Floorplan


class VariationError(ValueError):
    """Raised for invalid variation-model configurations."""


@dataclass(frozen=True)
class VariationConfig:
    """Tunable knobs of the within-die variation field.

    Attributes
    ----------
    never_faulty_fraction:
        Fraction of BRAMs whose weight is forced to exactly zero (38.9 % on
        VC707 per Fig. 5).
    lognormal_sigma:
        Sigma of the per-BRAM log-normal factor; larger values produce the
        heavier tail seen on the performance-optimized VC707.
    spatial_components:
        Number of low-frequency spatial waves combined into the systematic
        within-die component.
    spatial_strength:
        Relative amplitude of the systematic component versus the random
        per-BRAM component (0 disables spatial correlation).
    """

    never_faulty_fraction: float = 0.40
    lognormal_sigma: float = 1.5
    spatial_components: int = 4
    spatial_strength: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.never_faulty_fraction < 1.0:
            raise VariationError("never_faulty_fraction must be in [0, 1)")
        if self.lognormal_sigma < 0:
            raise VariationError("lognormal_sigma must be non-negative")
        if self.spatial_components < 0:
            raise VariationError("spatial_components must be non-negative")
        if not 0.0 <= self.spatial_strength <= 1.0:
            raise VariationError("spatial_strength must be in [0, 1]")


class ProcessVariationField:
    """Deterministic per-BRAM vulnerability weights over one die.

    Parameters
    ----------
    floorplan:
        Physical layout of the die; the systematic component is a smooth
        function of the (x, y) site coordinates.
    seed:
        Per-die seed (derived from the board serial number).  Different seeds
        give uncorrelated maps, which is how die-to-die variation appears.
    config:
        Within-die variation knobs.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        seed: int,
        config: Optional[VariationConfig] = None,
    ) -> None:
        self.floorplan = floorplan
        self.seed = int(seed)
        self.config = config or VariationConfig()
        self._weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Field construction
    # ------------------------------------------------------------------
    def _spatial_component(self, coords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Smooth systematic within-die component in ``[0, 1]`` per BRAM."""
        cfg = self.config
        if cfg.spatial_components == 0 or cfg.spatial_strength == 0.0:
            return np.zeros(len(coords))
        x = coords[:, 0].astype(float)
        y = coords[:, 1].astype(float)
        x_span = max(float(x.max()) - float(x.min()), 1.0)
        y_span = max(float(y.max()) - float(y.min()), 1.0)
        field = np.zeros(len(coords))
        for _ in range(cfg.spatial_components):
            freq_x = rng.uniform(0.5, 2.0) * np.pi / x_span
            freq_y = rng.uniform(0.5, 2.0) * np.pi / y_span
            phase_x = rng.uniform(0, 2 * np.pi)
            phase_y = rng.uniform(0, 2 * np.pi)
            amplitude = rng.uniform(0.5, 1.0)
            field += amplitude * np.cos(freq_x * x + phase_x) * np.cos(freq_y * y + phase_y)
        # Normalize to [0, 1].
        field -= field.min()
        peak = field.max()
        if peak > 0:
            field /= peak
        return field

    def _build(self) -> np.ndarray:
        cfg = self.config
        n = self.floorplan.n_brams
        rng = np.random.default_rng(self.seed)
        coords = np.array([self.floorplan.coordinates(i) for i in range(n)])

        systematic = self._spatial_component(coords, rng)
        random_factor = rng.lognormal(mean=0.0, sigma=cfg.lognormal_sigma, size=n)

        combined = random_factor * (
            (1.0 - cfg.spatial_strength) + cfg.spatial_strength * (0.25 + 1.5 * systematic)
        )

        # Force the calibrated fraction of BRAMs to be completely fault-free.
        # The cut is taken on the combined weight so fault-free BRAMs tend to
        # cluster in the "strong" regions of the die, as the FVM figures show.
        n_zero = int(round(cfg.never_faulty_fraction * n))
        if n_zero > 0:
            order = np.argsort(combined)
            combined = combined.copy()
            combined[order[:n_zero]] = 0.0

        total = combined.sum()
        if total <= 0:
            raise VariationError("variation field collapsed to all-zero weights")
        return combined / total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Normalized per-BRAM vulnerability weights (sum to 1)."""
        if self._weights is None:
            self._weights = self._build()
        return self._weights

    def weight_of(self, bram_index: int) -> float:
        """Vulnerability weight of one BRAM."""
        return float(self.weights[bram_index])

    def never_faulty_indices(self) -> np.ndarray:
        """Dense indices of BRAMs with zero vulnerability."""
        return np.flatnonzero(self.weights == 0.0)

    def never_faulty_fraction(self) -> float:
        """Realized fraction of fault-free BRAMs (matches the config target)."""
        return float(np.mean(self.weights == 0.0))

    def expected_cell_counts(self, total_vulnerable_cells: float) -> np.ndarray:
        """Expected vulnerable-cell count per BRAM for a chip-level total."""
        if total_vulnerable_cells < 0:
            raise VariationError("total_vulnerable_cells must be non-negative")
        return self.weights * total_vulnerable_cells

    def correlation_with(self, other: "ProcessVariationField") -> float:
        """Pearson correlation between two dies' weight maps.

        Used by the die-to-die analysis (Fig. 7): two KC705 dies should show
        essentially no correlation, whereas re-building the same die's field
        must give correlation 1.
        """
        a, b = self.weights, other.weights
        if len(a) != len(b):
            raise VariationError("cannot correlate maps of different sizes")
        if np.allclose(a.std(), 0) or np.allclose(b.std(), 0):
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])
