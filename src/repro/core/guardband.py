"""Detection of Vmin, Vcrash and the voltage guardband from sweep data.

Fig. 1 of the paper splits the voltage axis of each rail into three regions:

* **SAFE** — from the nominal voltage down to ``Vmin``: no observable fault;
* **CRITICAL** — from ``Vmin`` down to ``Vcrash``: faults manifest with an
  exponentially growing rate;
* **CRASH** — below ``Vcrash``: the design stops operating (DONE de-asserts).

On hardware these thresholds are *discovered* by sweeping the rail downwards
and watching the read-back data and the DONE pin.  This module implements that
discovery on top of sweep results, so the reproduction derives the guardband
the same way the paper does rather than reading it out of the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class GuardbandError(ValueError):
    """Raised when sweep data is insufficient to locate the thresholds."""


@dataclass(frozen=True)
class SweepObservation:
    """One voltage step of a downward sweep."""

    voltage_v: float
    fault_count: int
    operational: bool

    def __post_init__(self) -> None:
        if self.fault_count < 0:
            raise GuardbandError("fault counts cannot be negative")


@dataclass(frozen=True)
class GuardbandResult:
    """Discovered voltage regions for one rail of one platform."""

    nominal_v: float
    vmin_v: float
    vcrash_v: float

    @property
    def guardband_v(self) -> float:
        """Width of the SAFE region below nominal, in volts."""
        return self.nominal_v - self.vmin_v

    @property
    def guardband_fraction(self) -> float:
        """Guardband as a fraction of the nominal voltage (Fig. 1's 39 %/34 %)."""
        return self.guardband_v / self.nominal_v

    @property
    def critical_window_v(self) -> float:
        """Width of the CRITICAL region, in volts."""
        return self.vmin_v - self.vcrash_v

    def regions(self) -> Dict[str, Tuple[float, float]]:
        """SAFE / CRITICAL / CRASH intervals as ``(low, high)`` tuples."""
        return {
            "SAFE": (self.vmin_v, self.nominal_v),
            "CRITICAL": (self.vcrash_v, self.vmin_v),
            "CRASH": (0.0, self.vcrash_v),
        }

    def classify(self, voltage_v: float) -> str:
        """Region name for an operating voltage."""
        if voltage_v >= self.vmin_v:
            return "SAFE"
        if voltage_v >= self.vcrash_v:
            return "CRITICAL"
        return "CRASH"


def detect_guardband(
    observations: Sequence[SweepObservation],
    nominal_v: float = 1.0,
) -> GuardbandResult:
    """Locate Vmin and Vcrash from a downward voltage sweep.

    ``Vmin`` is the lowest voltage at which the design still operates with
    zero observed faults; ``Vcrash`` is the lowest voltage at which the design
    operates at all.  Observations may be given in any order; they are sorted
    by voltage internally.
    """
    if not observations:
        raise GuardbandError("cannot detect a guardband from an empty sweep")
    ordered = sorted(observations, key=lambda obs: obs.voltage_v, reverse=True)

    operational = [obs for obs in ordered if obs.operational]
    if not operational:
        raise GuardbandError("the design never operated during the sweep")

    fault_free = [obs for obs in operational if obs.fault_count == 0]
    if not fault_free:
        raise GuardbandError(
            "no fault-free operating point observed; sweep must start at or above Vmin"
        )

    vmin = min(obs.voltage_v for obs in fault_free)
    vcrash = min(obs.voltage_v for obs in operational)
    if vcrash > vmin:
        # Degenerate sweep that never entered the critical region.
        vcrash = vmin
    return GuardbandResult(nominal_v=nominal_v, vmin_v=vmin, vcrash_v=vcrash)


def average_guardband_fraction(results: Sequence[GuardbandResult]) -> float:
    """Average guardband fraction across platforms (the headline 39 % / 34 %)."""
    if not results:
        raise GuardbandError("no guardband results to average")
    return sum(result.guardband_fraction for result in results) / len(results)


def power_saving_summary(
    results: Dict[str, GuardbandResult],
    reduction_factors: Dict[str, float],
) -> List[Tuple[str, float, float]]:
    """Join guardband and power results into Fig. 1-style summary rows.

    Returns ``(platform, guardband_fraction, power_reduction_factor)`` rows in
    the given platform order.
    """
    rows: List[Tuple[str, float, float]] = []
    for platform, result in results.items():
        factor = reduction_factors.get(platform)
        if factor is None:
            raise GuardbandError(f"missing power reduction factor for {platform}")
        rows.append((platform, result.guardband_fraction, factor))
    return rows
