"""Vulnerability clustering of BRAMs (low / mid / high classes).

Section II-C-3 of the paper clusters the per-BRAM fault rates observed at
``Vcrash`` with the k-means algorithm into low-, mid- and high-vulnerable
classes (Fig. 5): on VC707, 88.6 % of BRAMs land in the low-vulnerable class
with an average per-BRAM fault rate of ~0.02 %.  The ICBP mitigation then
steers the most sensitive NN layer into the low-vulnerable class.

The reproduction implements one-dimensional Lloyd's k-means directly (no
external dependency beyond NumPy) with a deterministic quantile-based
initialisation, so clustering the same map twice always gives the same
classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Ordered class names used throughout the reproduction.
CLASS_NAMES = ("low", "mid", "high")


class ClusteringError(ValueError):
    """Raised for degenerate clustering inputs."""


@dataclass(frozen=True)
class VulnerabilityCluster:
    """One k-means class of BRAMs."""

    name: str
    centroid: float
    bram_indices: Tuple[int, ...]
    mean_fault_rate: float

    @property
    def size(self) -> int:
        """Number of BRAMs in the class."""
        return len(self.bram_indices)


@dataclass(frozen=True)
class ClusteringResult:
    """Full clustering of one chip's per-BRAM fault rates."""

    clusters: Tuple[VulnerabilityCluster, ...]
    labels: Tuple[str, ...]
    n_brams: int

    def cluster(self, name: str) -> VulnerabilityCluster:
        """Look up a class by name ("low", "mid" or "high")."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise ClusteringError(f"no cluster named {name!r}")

    def fraction(self, name: str) -> float:
        """Fraction of BRAMs in a class (Fig. 5 reports 88.6 % low on VC707)."""
        return self.cluster(name).size / self.n_brams

    def label_of(self, bram_index: int) -> str:
        """Class label of one BRAM."""
        if not 0 <= bram_index < self.n_brams:
            raise ClusteringError(f"BRAM index {bram_index} out of range")
        return self.labels[bram_index]

    def indices_of(self, name: str) -> Tuple[int, ...]:
        """BRAM indices belonging to a class."""
        return self.cluster(name).bram_indices

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class size fraction and mean rate, for tables and benches."""
        return {
            cluster.name: {
                "fraction": cluster.size / self.n_brams,
                "count": float(cluster.size),
                "mean_fault_rate": cluster.mean_fault_rate,
                "centroid": cluster.centroid,
            }
            for cluster in self.clusters
        }


def _kmeans_1d(values: np.ndarray, k: int, max_iterations: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm in one dimension with quantile initialisation."""
    if k <= 0:
        raise ClusteringError("k must be positive")
    unique = np.unique(values)
    if len(unique) < k:
        # Degenerate input (e.g. all-zero map); spread centroids over the
        # available distinct values and pad with the maximum.
        centroids = np.concatenate([unique, np.full(k - len(unique), unique.max())]).astype(float)
    else:
        quantiles = np.linspace(0.0, 1.0, k + 2)[1:-1]
        centroids = np.quantile(values, quantiles).astype(float)
        centroids = np.sort(centroids)
    assignments = np.zeros(len(values), dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.abs(values[:, None] - centroids[None, :])
        new_assignments = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = values[new_assignments == j]
            if len(members):
                new_centroids[j] = members.mean()
        if np.array_equal(new_assignments, assignments) and np.allclose(new_centroids, centroids):
            break
        assignments, centroids = new_assignments, new_centroids
    order = np.argsort(centroids)
    remap = np.empty_like(order)
    remap[order] = np.arange(k)
    return remap[assignments], centroids[order]


def cluster_bram_vulnerability(
    per_bram_fault_counts: Sequence[int],
    bram_bits: int = 16 * 1024,
    k: int = 3,
) -> ClusteringResult:
    """Cluster per-BRAM fault counts into ``k`` vulnerability classes.

    Parameters
    ----------
    per_bram_fault_counts:
        Observed fault count of every BRAM at the studied voltage
        (typically ``Vcrash``), indexed by dense BRAM index.
    bram_bits:
        Bits per BRAM, used to convert counts to the percentage rates the
        paper reports.
    k:
        Number of classes; the paper uses 3 (low/mid/high).
    """
    counts = np.asarray(per_bram_fault_counts, dtype=float)
    if counts.ndim != 1 or len(counts) == 0:
        raise ClusteringError("per_bram_fault_counts must be a non-empty 1-D sequence")
    if (counts < 0).any():
        raise ClusteringError("fault counts cannot be negative")
    if k > len(CLASS_NAMES):
        raise ClusteringError(f"at most {len(CLASS_NAMES)} classes are supported")

    rates = counts / bram_bits
    labels_idx, centroids = _kmeans_1d(rates, k)

    clusters: List[VulnerabilityCluster] = []
    label_names: List[str] = [CLASS_NAMES[i] for i in labels_idx]
    for class_idx in range(k):
        members = np.flatnonzero(labels_idx == class_idx)
        mean_rate = float(rates[members].mean()) if len(members) else 0.0
        clusters.append(
            VulnerabilityCluster(
                name=CLASS_NAMES[class_idx],
                centroid=float(centroids[class_idx]),
                bram_indices=tuple(int(i) for i in members),
                mean_fault_rate=mean_rate,
            )
        )
    return ClusteringResult(
        clusters=tuple(clusters),
        labels=tuple(label_names),
        n_brams=len(counts),
    )


def low_vulnerable_indices(result: ClusteringResult) -> Tuple[int, ...]:
    """Indices of low-vulnerable BRAMs — the allow-list ICBP builds Pblocks from."""
    return result.indices_of("low")
