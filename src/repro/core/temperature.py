"""Inverse Thermal Dependence (ITD) model.

Section II-D of the paper heats the boards from 50 °C to 80 °C inside a heat
chamber and observes that the undervolting fault rate *decreases* with
temperature — by more than 3x on VC707 — because at near-threshold supply
voltages a hotter die has a lower threshold voltage, switches faster and
therefore meets timing on more paths (the ITD property of deep-nanometre
nodes).

The reproduction folds temperature into the fault model as an *equivalent
voltage shift*: operating at ``V`` and ``T`` behaves like operating at
``V + itd_coefficient * (T - T_ref)`` at the reference temperature.  The
coefficient is per-platform (performance-optimized VC707 responds more
strongly than the power-optimized KC705) and calibrated in
:mod:`repro.core.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's default on-board temperature during all non-heated experiments.
REFERENCE_TEMPERATURE_C = 50.0

#: Temperatures studied in Fig. 8.
STUDY_TEMPERATURES_C = (50.0, 60.0, 70.0, 80.0)


class TemperatureError(ValueError):
    """Raised for physically meaningless temperature-model parameters."""


@dataclass(frozen=True)
class ItdModel:
    """Linear equivalent-voltage shift per degree Celsius.

    Attributes
    ----------
    v_per_degc:
        Equivalent voltage gained per degree above the reference temperature.
        Positive values encode ITD (hotter means fewer faults); zero disables
        the effect (used by the ablation benchmarks).
    reference_c:
        Temperature at which the calibration anchors were measured.
    """

    v_per_degc: float
    reference_c: float = REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        if self.v_per_degc < 0:
            raise TemperatureError(
                "ITD coefficient must be non-negative; a negative value would "
                "mean hotter silicon fails more at low voltage, the opposite of ITD"
            )

    def voltage_shift(self, temperature_c: float) -> float:
        """Equivalent voltage shift at ``temperature_c`` (can be negative below ref)."""
        return self.v_per_degc * (temperature_c - self.reference_c)

    def effective_voltage(self, vccbram_v: float, temperature_c: float) -> float:
        """Voltage the fault model should evaluate at for a (V, T) operating point."""
        return vccbram_v + self.voltage_shift(temperature_c)

    def rate_scaling(self, slope_per_v: float, temperature_c: float) -> float:
        """Multiplicative fault-rate factor relative to the reference temperature.

        For an exponential rate model with slope ``k``, a voltage shift of
        ``delta`` scales the rate by ``exp(-k * delta)``; this helper exposes
        that factor for analytic checks and the temperature benchmark.
        """
        import math

        return math.exp(-slope_per_v * self.voltage_shift(temperature_c))
