"""Rail power models under voltage underscaling.

The paper reports board-level power measured with a power meter plus an
XPE-based breakdown, and the headline power findings are relative:

* lowering ``VCCBRAM`` from ``Vnom`` (1.0 V) to ``Vmin`` saves *more than an
  order of magnitude* of BRAM power (Figs. 3 and 10);
* lowering further to ``Vcrash`` saves roughly another 40 % of BRAM power
  relative to ``Vmin`` (Section III-A);
* on the NN accelerator this translates to a 24.1 % total on-chip power
  reduction at ``Vmin``.

Both dynamic and static power drop when the supply is lowered (dynamic as
~V^2 at constant frequency, static super-linearly through leakage), and the
measured totals in the paper fall much faster than V^2 alone.  The
reproduction therefore uses a calibrated exponential law per rail,

    ``P(V) = P_nom * exp(-gamma * (Vnom - V))``,

whose single slope ``gamma`` simultaneously satisfies the ">10x at Vmin" and
"~40 % more at Vcrash" anchors for the calibrated platforms.  The model also
exposes a dynamic/static split so the breakdown figures can label both
components, and a utilization scale so designs that use only part of the BRAM
pool (the NN accelerator uses 70.8 %) draw proportionally less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .calibration import PlatformCalibration


class PowerModelError(ValueError):
    """Raised for invalid power-model queries."""


@dataclass(frozen=True)
class RailPowerModel:
    """Exponential power-vs-voltage model for one rail.

    Attributes
    ----------
    nominal_power_w:
        Rail power at the nominal voltage with 100 % utilization.
    nominal_voltage_v:
        Voltage at which ``nominal_power_w`` applies.
    gamma_per_v:
        Exponential slope; larger values mean steeper savings.
    static_fraction:
        Fraction of the nominal power that is static/leakage.  Used only to
        split reported numbers into dynamic and static components; both
        components follow the same calibrated total.
    """

    nominal_power_w: float
    nominal_voltage_v: float = 1.0
    gamma_per_v: float = 7.3
    static_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.nominal_power_w < 0:
            raise PowerModelError("nominal power must be non-negative")
        if self.gamma_per_v <= 0:
            raise PowerModelError("gamma must be positive")
        if not 0.0 <= self.static_fraction <= 1.0:
            raise PowerModelError("static_fraction must be in [0, 1]")

    def power_w(self, voltage_v: float, utilization: float = 1.0) -> float:
        """Total rail power at ``voltage_v`` for a given utilization in [0, 1].

        Delegates to :meth:`power_array` so the scalar and batched paths are
        one implementation (and therefore bit-identical to each other).
        """
        return float(self.power_array([voltage_v], utilization=utilization)[0])

    def power_array(self, voltages_v: Sequence[float], utilization: float = 1.0) -> np.ndarray:
        """Vectorized :meth:`power_w` over a whole voltage axis.

        This is the single implementation of the exponential power law —
        :meth:`power_w` and the sweep engine's
        :func:`repro.core.batch.power_curve` both delegate here.
        """
        volts = np.asarray(list(voltages_v), dtype=float)
        if volts.size == 0:
            return volts
        if np.any(volts <= 0):
            raise PowerModelError("voltage must be positive")
        if not 0.0 <= utilization <= 1.0:
            raise PowerModelError("utilization must be in [0, 1]")
        scale = np.exp(-self.gamma_per_v * (self.nominal_voltage_v - volts))
        # Static power is drawn by the whole rail regardless of how many
        # blocks the design instantiates; dynamic power scales with use.
        dynamic = (1.0 - self.static_fraction) * self.nominal_power_w * utilization
        static = self.static_fraction * self.nominal_power_w
        return (dynamic + static) * scale

    def dynamic_power_w(self, voltage_v: float, utilization: float = 1.0) -> float:
        """Dynamic component of :meth:`power_w`."""
        scale = float(np.exp(-self.gamma_per_v * (self.nominal_voltage_v - voltage_v)))
        return (1.0 - self.static_fraction) * self.nominal_power_w * utilization * scale

    def static_power_w(self, voltage_v: float) -> float:
        """Static component of :meth:`power_w`."""
        scale = float(np.exp(-self.gamma_per_v * (self.nominal_voltage_v - voltage_v)))
        return self.static_fraction * self.nominal_power_w * scale

    def savings_fraction(self, from_v: float, to_v: float, utilization: float = 1.0) -> float:
        """Fractional power saved by moving the rail from ``from_v`` to ``to_v``."""
        before = self.power_w(from_v, utilization)
        after = self.power_w(to_v, utilization)
        if before == 0:
            return 0.0
        return (before - after) / before

    def reduction_factor(self, from_v: float, to_v: float, utilization: float = 1.0) -> float:
        """Ratio ``P(from_v) / P(to_v)`` — ">10x" style numbers."""
        after = self.power_w(to_v, utilization)
        if after == 0:
            raise PowerModelError("cannot compute reduction factor against zero power")
        return self.power_w(from_v, utilization) / after


def bram_power_model(calibration: PlatformCalibration) -> RailPowerModel:
    """The VCCBRAM rail power model for a calibrated platform."""
    return RailPowerModel(
        nominal_power_w=calibration.bram_power_nominal_w,
        nominal_voltage_v=calibration.vnom_v,
        gamma_per_v=calibration.power_gamma_per_v,
    )


def vccint_power_model(calibration: PlatformCalibration, nominal_power_w: float) -> RailPowerModel:
    """A VCCINT rail model sharing the platform's calibrated voltage slope."""
    return RailPowerModel(
        nominal_power_w=nominal_power_w,
        nominal_voltage_v=calibration.vnom_v,
        gamma_per_v=calibration.power_gamma_per_v,
    )


@dataclass
class PowerSweepPoint:
    """One point of a power-vs-voltage curve (Fig. 3's power series)."""

    voltage_v: float
    power_w: float

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(voltage, power)`` for table rendering."""
        return (self.voltage_v, self.power_w)


def power_sweep(
    model: RailPowerModel,
    voltages: Iterable[float],
    utilization: float = 1.0,
) -> List[PowerSweepPoint]:
    """Evaluate a rail model over a list of voltages (highest first or any order)."""
    return [PowerSweepPoint(voltage_v=v, power_w=model.power_w(v, utilization)) for v in voltages]


def summarize_savings(model: RailPowerModel, vnom: float, vmin: float, vcrash: float) -> Dict[str, float]:
    """The three headline power numbers for one platform.

    Returns a dict with the nominal->Vmin reduction factor, the Vmin->Vcrash
    savings fraction and the nominal->Vcrash savings fraction, matching the
    way the paper phrases its results.
    """
    return {
        "nominal_to_vmin_factor": model.reduction_factor(vnom, vmin),
        "vmin_to_vcrash_savings": model.savings_fraction(vmin, vcrash),
        "nominal_to_vcrash_savings": model.savings_fraction(vnom, vcrash),
    }
