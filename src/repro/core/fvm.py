"""Fault Variation Map (FVM) construction and queries.

The paper's key enabler for low-overhead mitigation is the FVM: a
chip-dependent map from every BRAM's *physical* location to its observed
undervolting fault behaviour (Fig. 6 for VC707, Fig. 7 for the KC705 pair).
Because the faults are deterministic, the FVM is extracted once as a
pre-processing step and then reused at design time — ICBP consumes the FVM to
decide which physical BRAMs are safe to place sensitive data into.

An :class:`FvmEntry` records, per BRAM, the physical coordinates and the
fault count at each swept voltage; the :class:`FaultVariationMap` aggregates
them and offers the queries the rest of the system needs (per-voltage grids,
vulnerability classification, low-vulnerable allow-lists, comparison between
two dies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.floorplan import Floorplan

from .clustering import ClusteringResult, cluster_bram_vulnerability


class FvmError(ValueError):
    """Raised for malformed FVM construction or queries."""


@dataclass(frozen=True)
class FvmEntry:
    """Fault behaviour of one physical BRAM across the swept voltages."""

    bram_index: int
    x: int
    y: int
    fault_counts: Tuple[int, ...]

    def total_faults(self) -> int:
        """Fault count summed over all swept voltages (used for map rendering)."""
        return int(sum(self.fault_counts))

    def count_at(self, voltage_index: int) -> int:
        """Fault count at one swept voltage step."""
        return self.fault_counts[voltage_index]


@dataclass
class FaultVariationMap:
    """Chip-dependent map of per-BRAM undervolting fault behaviour."""

    platform: str
    voltages_v: Tuple[float, ...]
    entries: Tuple[FvmEntry, ...]
    bram_bits: int = 16 * 1024
    _clustering: Optional[ClusteringResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.entries:
            raise FvmError("an FVM needs at least one BRAM entry")
        expected = len(self.voltages_v)
        for entry in self.entries:
            if len(entry.fault_counts) != expected:
                raise FvmError(
                    f"BRAM {entry.bram_index} has {len(entry.fault_counts)} counts "
                    f"for {expected} swept voltages"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        platform: str,
        floorplan: Floorplan,
        voltages_v: Sequence[float],
        counts_by_voltage: Sequence[Sequence[int]],
        bram_bits: int = 16 * 1024,
    ) -> "FaultVariationMap":
        """Build an FVM from per-voltage count vectors.

        ``counts_by_voltage[i][b]`` is the fault count of BRAM ``b`` at swept
        voltage ``voltages_v[i]``.
        """
        if len(counts_by_voltage) != len(voltages_v):
            raise FvmError("need one count vector per swept voltage")
        n_brams = floorplan.n_brams
        for vector in counts_by_voltage:
            if len(vector) != n_brams:
                raise FvmError("count vectors must cover every BRAM on the die")
        matrix = np.asarray(counts_by_voltage, dtype=np.int64)
        return cls.from_matrix(platform, floorplan, voltages_v, matrix, bram_bits=bram_bits)

    @classmethod
    def from_matrix(
        cls,
        platform: str,
        floorplan: Floorplan,
        voltages_v: Sequence[float],
        counts: np.ndarray,
        bram_bits: int = 16 * 1024,
    ) -> "FaultVariationMap":
        """Build an FVM from a dense ``(n_voltages, n_brams)`` count matrix.

        This is the natural constructor for the batched sweep engine
        (:mod:`repro.core.batch`), whose per-BRAM path produces exactly this
        matrix in one call.
        """
        matrix = np.asarray(counts)
        expected = (len(voltages_v), floorplan.n_brams)
        if matrix.shape != expected:
            raise FvmError(f"count matrix shape {matrix.shape} does not match {expected}")
        if matrix.size and matrix.min() < 0:
            raise FvmError("fault counts cannot be negative")
        per_bram_rows = matrix.T.tolist()
        entries: List[FvmEntry] = []
        for bram_index, row in enumerate(per_bram_rows):
            x, y = floorplan.coordinates(bram_index)
            entries.append(
                FvmEntry(bram_index=bram_index, x=x, y=y, fault_counts=tuple(int(c) for c in row))
            )
        return cls(
            platform=platform,
            voltages_v=tuple(float(v) for v in voltages_v),
            entries=tuple(entries),
            bram_bits=bram_bits,
        )

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    @property
    def n_brams(self) -> int:
        """Number of BRAMs covered by the map."""
        return len(self.entries)

    def counts_matrix(self) -> np.ndarray:
        """The full ``(n_voltages, n_brams)`` count matrix backing the map."""
        return np.array([entry.fault_counts for entry in self.entries], dtype=np.int64).T

    def counts_at_lowest_voltage(self) -> np.ndarray:
        """Per-BRAM counts at the lowest swept voltage (``Vcrash`` in the paper)."""
        lowest_index = int(np.argmin(self.voltages_v))
        return np.array([entry.fault_counts[lowest_index] for entry in self.entries], dtype=np.int64)

    def per_bram_rates_percent(self) -> np.ndarray:
        """Per-BRAM fault rate at the lowest voltage, in percent of the BRAM bits."""
        return 100.0 * self.counts_at_lowest_voltage() / self.bram_bits

    def never_faulty_fraction(self) -> float:
        """Fraction of BRAMs with zero faults across the entire sweep."""
        totals = np.array([entry.total_faults() for entry in self.entries])
        return float(np.mean(totals == 0))

    def statistics(self) -> Dict[str, float]:
        """Max / min / mean per-BRAM rate at the lowest voltage (Fig. 5 text)."""
        rates = self.per_bram_rates_percent()
        return {
            "max_percent": float(rates.max()),
            "min_percent": float(rates.min()),
            "mean_percent": float(rates.mean()),
            "never_faulty_fraction": self.never_faulty_fraction(),
        }

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def clustering(self, k: int = 3) -> ClusteringResult:
        """K-means vulnerability classes over the map (cached for k=3)."""
        if k == 3 and self._clustering is not None:
            return self._clustering
        result = cluster_bram_vulnerability(
            self.counts_at_lowest_voltage(), bram_bits=self.bram_bits, k=k
        )
        if k == 3:
            self._clustering = result
        return result

    def low_vulnerable_brams(self) -> Tuple[int, ...]:
        """Physical BRAM indices classified as low-vulnerable."""
        return self.clustering().indices_of("low")

    def high_vulnerable_brams(self) -> Tuple[int, ...]:
        """Physical BRAM indices classified as high-vulnerable."""
        return self.clustering().indices_of("high")

    def fault_free_brams(self) -> Tuple[int, ...]:
        """Physical BRAM indices with zero faults across the whole sweep."""
        return tuple(
            entry.bram_index for entry in self.entries if entry.total_faults() == 0
        )

    def vulnerability_rank(self) -> List[int]:
        """BRAM indices sorted from least to most vulnerable.

        Ties (e.g. the large fault-free group) are broken by index so the
        ordering is deterministic.
        """
        counts = self.counts_at_lowest_voltage()
        return [int(i) for i in np.lexsort((np.arange(self.n_brams), counts))]

    # ------------------------------------------------------------------
    # Rendering / comparison
    # ------------------------------------------------------------------
    def to_grid(self, floorplan: Floorplan, voltage_index: Optional[int] = None) -> np.ndarray:
        """Render the map onto the physical grid; empty sites hold ``-1``.

        ``voltage_index`` selects one swept voltage; ``None`` sums the sweep,
        which is how Fig. 6 aggregates the 10 mV steps from Vmin to Vcrash.
        """
        height = floorplan.grid_height or 0
        grid = -np.ones((floorplan.n_columns, height), dtype=np.int64)
        for entry in self.entries:
            value = entry.total_faults() if voltage_index is None else entry.count_at(voltage_index)
            grid[entry.x, entry.y] = value
        return grid

    def ascii_map(self, floorplan: Floorplan, width: int = 72) -> str:
        """Coarse ASCII rendering of the FVM for terminal/bench output."""
        grid = self.to_grid(floorplan)
        symbols = []
        clustering = self.clustering()
        for y in range((floorplan.grid_height or 0) - 1, -1, -1):
            row_chars = []
            for x in range(floorplan.n_columns):
                value = grid[x, y]
                if value < 0:
                    row_chars.append(" ")
                else:
                    index = floorplan.index_at(x, y)
                    label = clustering.label_of(index) if index is not None else "low"
                    row_chars.append({"low": ".", "mid": "o", "high": "#"}[label])
            symbols.append("".join(row_chars)[:width])
        return "\n".join(symbols)

    def compare(self, other: "FaultVariationMap") -> Dict[str, float]:
        """Quantify how different two dies' maps are (Fig. 7 analysis).

        Returns the rate ratio at the lowest voltage, the Pearson correlation
        of the per-BRAM counts and the Jaccard overlap of the high-vulnerable
        sets.  Two KC705 dies should show a rate ratio around 4x, negligible
        correlation and little overlap.
        """
        if self.n_brams != other.n_brams:
            raise FvmError("cannot compare FVMs of different BRAM counts")
        mine = self.counts_at_lowest_voltage().astype(float)
        theirs = other.counts_at_lowest_voltage().astype(float)
        total_mine, total_theirs = mine.sum(), theirs.sum()
        ratio = float(total_mine / total_theirs) if total_theirs > 0 else float("inf")
        if mine.std() == 0 or theirs.std() == 0:
            correlation = 0.0
        else:
            correlation = float(np.corrcoef(mine, theirs)[0, 1])
        high_mine = set(self.high_vulnerable_brams())
        high_theirs = set(other.high_vulnerable_brams())
        union = high_mine | high_theirs
        jaccard = len(high_mine & high_theirs) / len(union) if union else 0.0
        return {
            "rate_ratio": ratio,
            "count_correlation": correlation,
            "high_class_jaccard": jaccard,
        }
