"""Vectorized batch evaluation engine for the undervolting fault model.

The scalar API of :mod:`repro.core.faultmodel` answers one question at a
time: "how many faults does this chip show at voltage V, temperature T, run
r?".  Every figure of the paper, however, is a *grid* of such questions — 50
voltage steps x 100 runs for Table II, a voltage x temperature matrix for
Fig. 8, a voltage x BRAM matrix for the Fault Variation Maps of Figs. 6/7.
Looping the scalar path over those grids costs one Python iteration per BRAM
per operating point, which is exactly the kind of interpreter-bound hot loop
the ROADMAP wants gone.

This module evaluates whole operating grids in single NumPy broadcasts:

* :class:`OperatingGrid` describes a (voltage x temperature x run) cross
  product;
* :class:`FlatFaultTable` flattens every BRAM's vulnerable-cell profile into
  chip-wide arrays, built once per field and reused for every query;
* :class:`BatchFaultEvaluator` computes chip-level counts with a single
  ``searchsorted`` over the sorted failure voltages (``O((N + G) log N)`` for
  ``N`` cells and ``G`` grid points instead of ``O(N * G)``), and per-BRAM
  count matrices with one scattered histogram plus a reverse cumulative sum;
* :func:`cached_fault_field` memoizes constructed fields per chip so repeated
  sweeps on the same board reuse the variation field and cell profiles;
* :func:`power_curve` evaluates a calibrated rail power model over a whole
  voltage axis at once.

Equivalence guarantee: the batched paths perform the *same* IEEE-754
comparisons as the scalar paths (``failure_voltage > effective_voltage`` with
the effective voltage assembled in the same operation order), so batched
counts are bit-identical to the scalar API — not merely statistically close.
``tests/core/test_batch.py`` asserts this property across voltages,
temperatures, patterns and ablation configs, and ``docs/batch_engine.md``
documents the argument.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.bram import data_pattern

from .power import RailPowerModel
from .temperature import REFERENCE_TEMPERATURE_C

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fpga.platform import FpgaChip

    from .calibration import PlatformCalibration
    from .faultmodel import FaultField, FaultModelConfig
    from .variation import VariationConfig


class BatchError(ValueError):
    """Raised for invalid operating grids or batch queries."""


# ----------------------------------------------------------------------
# Operating grids
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatingGrid:
    """A (voltage x temperature x run) cross product of operating points.

    Attributes
    ----------
    voltages_v:
        VCCBRAM setpoints, one per grid row.  Any order is allowed; results
        follow the order given here.
    temperatures_c:
        Board temperatures folded in through the ITD equivalent-voltage
        shift.  Defaults to the paper's 50 degC reference.
    run_indices:
        Run numbers whose deterministic supply ripple is applied.  ``None``
        reproduces the scalar API's ``run_index=None`` (no ripple term); the
        run axis then has length 1.
    """

    voltages_v: Tuple[float, ...]
    temperatures_c: Tuple[float, ...] = (REFERENCE_TEMPERATURE_C,)
    run_indices: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "voltages_v", tuple(float(v) for v in self.voltages_v))
        object.__setattr__(self, "temperatures_c", tuple(float(t) for t in self.temperatures_c))
        if self.run_indices is not None:
            # Any integer is a valid run index: the per-run ripple generator
            # is seeded deterministically for negatives too, matching the
            # scalar API's contract.
            object.__setattr__(self, "run_indices", tuple(int(r) for r in self.run_indices))
        if not self.voltages_v:
            raise BatchError("an operating grid needs at least one voltage")
        if not self.temperatures_c:
            raise BatchError("an operating grid needs at least one temperature")
        if self.run_indices is not None and not self.run_indices:
            raise BatchError("run_indices must be None or non-empty")

    # ------------------------------------------------------------------
    @classmethod
    def from_axes(
        cls,
        voltages_v: Iterable[float],
        temperatures_c: Optional[Iterable[float]] = None,
        runs: "int | Iterable[int] | None" = None,
    ) -> "OperatingGrid":
        """Build a grid from axis values; ``runs`` may be a count or indices."""
        temperatures = (
            (REFERENCE_TEMPERATURE_C,) if temperatures_c is None else tuple(temperatures_c)
        )
        if runs is None:
            run_indices: Optional[Tuple[int, ...]] = None
        elif isinstance(runs, int):
            if runs < 1:
                raise BatchError("run count must be at least 1")
            run_indices = tuple(range(runs))
        else:
            run_indices = tuple(runs)
        return cls(tuple(voltages_v), temperatures, run_indices)

    @classmethod
    def single(
        cls,
        voltage_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> "OperatingGrid":
        """A 1x1x1 grid matching one scalar-API operating point."""
        runs = None if run_index is None else (int(run_index),)
        return cls((float(voltage_v),), (float(temperature_c),), runs)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """Result shape ``(n_voltages, n_temperatures, n_runs)``."""
        n_runs = 1 if self.run_indices is None else len(self.run_indices)
        return (len(self.voltages_v), len(self.temperatures_c), n_runs)

    @property
    def n_points(self) -> int:
        """Total number of operating points in the grid."""
        v, t, r = self.shape
        return v * t * r


def voltage_ladder(start_v: float, stop_v: float, step_v: float) -> Tuple[float, ...]:
    """The descending voltage ladder from ``start_v`` down to ``stop_v``.

    The paper's sweeps walk rails down in fixed (10 mV) steps; every driver
    that needs the ladder — sweep harness, ICBP FVM extraction — builds it
    here so the rounding and stop-tolerance conventions cannot drift apart.
    """
    if step_v <= 0:
        raise BatchError("step_v must be positive")
    if stop_v > start_v:
        raise BatchError("voltage ladders go downward")
    voltages = []
    voltage = start_v
    while voltage >= stop_v - 1e-9:
        voltages.append(voltage)
        voltage = round(voltage - step_v, 4)
    return tuple(voltages)


# ----------------------------------------------------------------------
# Flattened fault profiles
# ----------------------------------------------------------------------
@dataclass
class FlatFaultTable:
    """Every vulnerable bitcell of a chip, flattened into chip-wide arrays.

    The scalar fault model stores one :class:`~repro.core.faultmodel.\
BramFaultProfile` per BRAM; batched evaluation wants the whole population in
    four parallel arrays so a single comparison covers the chip.  Rows are
    grouped by BRAM in ascending index order (the concatenation order), which
    the per-BRAM histogram path relies on only through ``bram_ids``.
    """

    n_brams: int
    bram_ids: np.ndarray
    cols: np.ndarray
    thresholds_v: np.ndarray
    one_to_zero: np.ndarray

    @classmethod
    def from_field(cls, fault_field: "FaultField") -> "FlatFaultTable":
        """Flatten (and thereby materialize) every BRAM profile of a field."""
        profiles = fault_field.profiles()
        sizes = [p.n_vulnerable for p in profiles]
        return cls(
            n_brams=len(profiles),
            bram_ids=np.repeat(np.arange(len(profiles), dtype=np.int64), sizes),
            cols=np.concatenate([p.cols for p in profiles]) if profiles else np.array([], dtype=np.int64),
            thresholds_v=np.concatenate([p.failure_voltages_v for p in profiles]),
            one_to_zero=np.concatenate([p.one_to_zero for p in profiles]),
        )

    @property
    def n_cells(self) -> int:
        """Total number of vulnerable bitcells on the chip."""
        return len(self.thresholds_v)

    def observable_mask(self, pattern_bits: Optional[np.ndarray]) -> np.ndarray:
        """Which cells produce an *observable* flip for a stored pattern.

        Mirrors the scalar ``_firing_mask`` data sensitivity exactly: a
        ``1 -> 0`` cell is observable only where the pattern stores a 1, a
        ``0 -> 1`` cell only where it stores a 0.  ``None`` reproduces the
        scalar no-pattern convention (an implicit all-ones image), keeping
        only the ``1 -> 0`` cells.
        """
        if pattern_bits is None:
            return self.one_to_zero.copy()
        stored = pattern_bits[self.cols].astype(bool)
        return np.where(self.one_to_zero, stored, ~stored)

    def cells_per_bram(self) -> np.ndarray:
        """Vulnerable-cell count of every BRAM (zero for never-faulty ones)."""
        return np.bincount(self.bram_ids, minlength=self.n_brams).astype(np.int64)


# ----------------------------------------------------------------------
# The evaluator
# ----------------------------------------------------------------------
class BatchFaultEvaluator:
    """Batched fault-count queries bound to one :class:`FaultField`.

    The evaluator owns the field's :class:`FlatFaultTable` plus small
    per-pattern caches (sorted observable thresholds), so repeated sweeps with
    the same pattern pay the sort once.
    """

    def __init__(self, fault_field: "FaultField") -> None:
        self.field = fault_field
        self._table: Optional[FlatFaultTable] = None
        self._sorted_thresholds: Dict[bytes, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def table(self) -> FlatFaultTable:
        """The flattened cell table (built lazily, then reused)."""
        if self._table is None:
            self._table = FlatFaultTable.from_field(self.field)
        return self._table

    def adopt_table(self, table: FlatFaultTable) -> None:
        """Install a pre-built table (e.g. an mmap-attached shared one).

        Used by :mod:`repro.exec.shm` so worker processes skip profile
        materialization entirely.  Per-pattern sorted-threshold caches are
        dropped because they derive from the table.
        """
        self._table = table
        self._sorted_thresholds.clear()

    @staticmethod
    def _pattern_bits(pattern: "str | int | None") -> Optional[np.ndarray]:
        if pattern is None:
            return None
        return data_pattern(pattern, rows=1)[0].astype(np.uint8)

    def _sorted_observable(self, pattern: "str | int | None") -> np.ndarray:
        """Sorted failure voltages of the cells observable under ``pattern``."""
        bits = self._pattern_bits(pattern)
        key = b"<no-pattern>" if bits is None else bits.tobytes()
        cached = self._sorted_thresholds.get(key)
        if cached is None:
            mask = self.table.observable_mask(bits)
            cached = np.sort(self.table.thresholds_v[mask])
            self._sorted_thresholds[key] = cached
        return cached

    def sorted_observable_thresholds(self, pattern: "str | int | None") -> np.ndarray:
        """Sorted observable failure voltages for a pattern (cached; do not
        mutate).  This is the exact array :meth:`chip_counts` bisects, so
        cross-die kernels that stack it per die reproduce the per-die counts
        bit-for-bit (see :mod:`repro.harness.fleet`)."""
        return self._sorted_observable(pattern)

    # ------------------------------------------------------------------
    def effective_voltages(self, grid: OperatingGrid) -> np.ndarray:
        """Effective bitcell voltage at every grid point, shape ``grid.shape``.

        Assembled in the same operation order as the scalar path —
        ``(V + itd_shift) + ripple`` — so each grid point carries the exact
        float the scalar ``effective_voltage`` would return.
        """
        f = self.field
        voltages = np.asarray(grid.voltages_v, dtype=float)
        shifts = np.asarray([f.itd.voltage_shift(t) for t in grid.temperatures_c], dtype=float)
        eff = voltages[:, None, None] + shifts[None, :, None]
        if grid.run_indices is not None and f.config.ripple_enabled:
            ripples = np.asarray([f.ripple_v(r) for r in grid.run_indices], dtype=float)
            eff = eff + ripples[None, None, :]
        else:
            eff = np.broadcast_to(eff, grid.shape).copy()
        return eff

    def chip_counts(
        self, grid: OperatingGrid, pattern: "str | int | None" = 0xFFFF
    ) -> np.ndarray:
        """Chip-level observable fault count at every grid point.

        One ``searchsorted`` of the grid's effective voltages into the sorted
        observable failure voltages: a cell fires iff its threshold is
        strictly above the effective voltage, so the count at a point is the
        number of thresholds to the right of it.
        """
        thresholds = self._sorted_observable(pattern)
        eff = self.effective_voltages(grid)
        return (thresholds.size - np.searchsorted(thresholds, eff, side="right")).astype(
            np.int64
        )

    def chip_rates_per_mbit(
        self, grid: OperatingGrid, pattern: "str | int | None" = 0xFFFF
    ) -> np.ndarray:
        """Chip-level fault rate (faults per Mbit) at every grid point."""
        return self.chip_counts(grid, pattern) / self.field.chip.brams.total_mbits

    def per_bram_counts(
        self, grid: OperatingGrid, pattern: "str | int | None" = 0xFFFF
    ) -> np.ndarray:
        """Per-BRAM observable fault counts, shape ``grid.shape + (n_brams,)``.

        For each observable cell, ``searchsorted`` against the *sorted grid*
        gives the number of grid points the cell fires at; a scattered
        histogram over (BRAM, insertion position) followed by a reverse
        cumulative sum then yields every (grid point, BRAM) count without a
        Python loop over either axis.
        """
        table = self.table
        observable = table.observable_mask(self._pattern_bits(pattern))
        bram_ids = table.bram_ids[observable]
        thresholds = table.thresholds_v[observable]

        eff = self.effective_voltages(grid).reshape(-1)
        n_points = eff.size
        order = np.argsort(eff, kind="stable")
        sorted_eff = eff[order]

        # Cell fires at sorted grid position g iff sorted_eff[g] < threshold,
        # i.e. at positions 0 .. pos-1 with pos = searchsorted(..., "left").
        pos = np.searchsorted(sorted_eff, thresholds, side="left")
        hist = np.zeros((table.n_brams, n_points + 1), dtype=np.int64)
        np.add.at(hist, (bram_ids, pos), 1)
        # tail[b, p] = number of cells of BRAM b with pos >= p, so the count
        # at sorted position g (cells with pos > g) is tail[b, g + 1].
        tail = np.cumsum(hist[:, ::-1], axis=1)[:, ::-1]
        counts = np.empty((table.n_brams, n_points), dtype=np.int64)
        counts[:, order] = tail[:, 1:]
        return counts.T.reshape(grid.shape + (table.n_brams,))


# ----------------------------------------------------------------------
# Batched sweep results
# ----------------------------------------------------------------------
@dataclass
class BatchGridResult:
    """Fault counts (and optionally power) over a full operating grid.

    This is the raw, array-shaped product of a batched sweep; the harness
    offers :meth:`repro.harness.UndervoltingExperiment.grid_sweep` to produce
    it and converters back to the record types where the legacy per-step
    shape is wanted.
    """

    grid: OperatingGrid
    chip_counts: np.ndarray
    total_mbits: float
    pattern: str = "0xffff"
    bram_power_w: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.chip_counts.shape != self.grid.shape:
            raise BatchError(
                f"counts shape {self.chip_counts.shape} does not match grid {self.grid.shape}"
            )
        if self.total_mbits <= 0:
            raise BatchError("total_mbits must be positive")

    def rates_per_mbit(self) -> np.ndarray:
        """Fault rate at every grid point, shape ``(V, T, R)``."""
        return self.chip_counts / self.total_mbits

    def median_counts(self) -> np.ndarray:
        """Median fault count over the run axis, shape ``(V, T)``."""
        return np.median(self.chip_counts, axis=2)

    def median_rates_per_mbit(self) -> np.ndarray:
        """Median fault rate over the run axis, shape ``(V, T)``."""
        return self.median_counts() / self.total_mbits

    def run_std_per_mbit(self) -> np.ndarray:
        """Run-to-run rate standard deviation (Table II), shape ``(V, T)``."""
        return np.std(self.chip_counts, axis=2) / self.total_mbits


# ----------------------------------------------------------------------
# Vectorized rail power
# ----------------------------------------------------------------------
def power_curve(
    model: RailPowerModel, voltages_v: Sequence[float], utilization: float = 1.0
) -> np.ndarray:
    """Rail power at every voltage of an axis, in one exponential broadcast.

    Thin alias for :meth:`RailPowerModel.power_array`, kept here so the sweep
    engine's vectorized surface lives in one namespace; raises the power
    model's own :class:`~repro.core.power.PowerModelError` on bad input.
    """
    return model.power_array(voltages_v, utilization=utilization)


# ----------------------------------------------------------------------
# Memoized per-chip fault fields
# ----------------------------------------------------------------------
#: LRU bound: each entry pins its chip (including the BRAM pool's bit
#: images, ~34 MB for a filled VC707) plus the field's profiles and flat
#: table, so the cap is kept small — one slot per studied board with room
#: for ablation variants.  ``clear_fault_field_cache`` frees everything.
_FIELD_CACHE: "OrderedDict[Tuple, FaultField]" = OrderedDict()
_FIELD_CACHE_MAX = 8
#: Guards the cache's LRU bookkeeping: thread-scheduled campaign shards and
#: execution-engine workers build fields for different dies concurrently.
_FIELD_CACHE_LOCK = threading.Lock()


def cached_fault_field(
    chip: "FpgaChip",
    calibration: Optional["PlatformCalibration"] = None,
    variation_config: Optional["VariationConfig"] = None,
    config: Optional["FaultModelConfig"] = None,
) -> "FaultField":
    """A memoized :class:`FaultField` for one chip instance.

    Building a field is cheap, but its lazily-built variation weights, cell
    profiles and flat table are not; the harness, accelerator and benchmarks
    all construct fields for the same chip repeatedly.  This cache keys on
    the chip *instance* plus the (hashable, frozen) configuration objects, so
    repeated sweeps on one board share a single field and therefore every
    derived cache.  The cached field keeps its chip alive, which in turn
    keeps the identity key stable; the cache holds at most
    ``_FIELD_CACHE_MAX`` entries, evicting least-recently-used ones.
    """
    from .faultmodel import FaultField

    key = (id(chip), calibration, variation_config, config)
    with _FIELD_CACHE_LOCK:
        cached = _FIELD_CACHE.get(key)
        if cached is not None and cached.chip is chip:
            _FIELD_CACHE.move_to_end(key)
            return cached
    built = FaultField(
        chip, calibration=calibration, variation_config=variation_config, config=config
    )
    with _FIELD_CACHE_LOCK:
        _FIELD_CACHE[key] = built
        if len(_FIELD_CACHE) > _FIELD_CACHE_MAX:
            _FIELD_CACHE.popitem(last=False)
    return built


def clear_fault_field_cache() -> None:
    """Drop every memoized fault field (mainly for tests and long sessions)."""
    with _FIELD_CACHE_LOCK:
        _FIELD_CACHE.clear()
