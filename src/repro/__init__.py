"""repro — reproduction of "Comprehensive Evaluation of Supply Voltage
Underscaling in FPGA on-Chip Memories" (Salami et al., MICRO 2018).

The package is organized as:

* :mod:`repro.fpga` — the FPGA platform substrate (BRAMs, floorplan, voltage
  rails, placement);
* :mod:`repro.core` — the calibrated undervolting behavioural models (fault
  field, power, temperature, FVM, clustering, characterization studies);
* :mod:`repro.exec` — the unified execution backend layer: every fault-field
  evaluation routes through a pluggable backend (simulated or recorded
  replay) and a scheduling/caching execution engine;
* :mod:`repro.harness` — the experimental methodology of Fig. 2 / Listing 1
  (PMBUS host, voltage sweeps, heat chamber, power meter);
* :mod:`repro.nn` — the neural-network substrate (datasets, training,
  fixed-point quantization, inference);
* :mod:`repro.accelerator` — the FPGA-based NN accelerator case study and the
  ICBP fault-mitigation technique;
* :mod:`repro.analysis` — reporting helpers shared by benches and examples.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
