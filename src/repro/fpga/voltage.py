"""Voltage rails and the on-board voltage regulator.

The studied boards expose several independently regulated supply rails.  The
paper concentrates on two on-chip rails: ``VCCBRAM`` (supplies the BRAM
bitcells) and ``VCCINT`` (supplies the internal logic: LUTs, DSPs, routing).
An on-board TI UCD9248 controller, reachable over PMBUS, sets and reads the
rails in millivolt steps.

This module models the rails and the regulator as plain software objects.  It
intentionally knows nothing about faults — it just tracks setpoints, enforces
the regulator's margining limits, and reports read-back values with a small
deterministic ripple so downstream code cannot accidentally depend on exact
equality with the setpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Nominal core voltage of all four studied platforms.
NOMINAL_VOLTAGE = 1.0

#: The paper steps the supply in 10 mV decrements (Listing 1, line 9).
DEFAULT_STEP_V = 0.010

#: Rail names used throughout the reproduction.
VCCBRAM = "VCCBRAM"
VCCINT = "VCCINT"
VCCAUX = "VCCAUX"
VCCO = "VCCO"


class VoltageError(ValueError):
    """Raised when a rail is driven outside the regulator's capabilities."""


@dataclass
class VoltageRail:
    """One independently regulated supply rail.

    Attributes
    ----------
    name:
        Rail identifier, e.g. ``"VCCBRAM"``.
    nominal_v:
        Factory-set nominal voltage (1.0 V on all studied boards).
    setpoint_v:
        Current regulator setpoint.
    min_v / max_v:
        Hard margining limits of the regulator; requests outside this window
        are rejected, mirroring the UCD9248's configured output limits.
    resolution_v:
        Smallest setpoint increment the regulator honours.
    """

    name: str
    nominal_v: float = NOMINAL_VOLTAGE
    setpoint_v: Optional[float] = None
    min_v: float = 0.40
    max_v: float = 1.10
    resolution_v: float = 0.001

    def __post_init__(self) -> None:
        if self.min_v >= self.max_v:
            raise VoltageError(f"rail {self.name}: min_v must be below max_v")
        if not self.min_v <= self.nominal_v <= self.max_v:
            raise VoltageError(f"rail {self.name}: nominal voltage outside limits")
        if self.setpoint_v is None:
            self.setpoint_v = self.nominal_v
        self.set(self.setpoint_v)

    def quantize(self, volts: float) -> float:
        """Round a request to the regulator's resolution."""
        steps = round(volts / self.resolution_v)
        return round(steps * self.resolution_v, 6)

    def set(self, volts: float) -> float:
        """Drive the rail to ``volts`` (quantized); returns the applied value."""
        volts = self.quantize(volts)
        if not self.min_v <= volts <= self.max_v:
            raise VoltageError(
                f"rail {self.name}: {volts:.3f} V outside limits "
                f"[{self.min_v:.3f}, {self.max_v:.3f}]"
            )
        self.setpoint_v = volts
        return volts

    def reset(self) -> float:
        """Return the rail to its nominal voltage."""
        return self.set(self.nominal_v)

    def undervolt_by(self, delta_v: float) -> float:
        """Lower the setpoint by ``delta_v`` volts."""
        if delta_v < 0:
            raise VoltageError("undervolt_by expects a non-negative delta")
        return self.set(self.setpoint_v - delta_v)

    def read(self) -> float:
        """Read the rail back, with a deterministic sub-millivolt ripple.

        The ripple is a fixed function of the setpoint so repeated reads are
        stable (the measurement loop takes medians anyway) while still not
        being bit-identical to the setpoint.
        """
        ripple = ((hash((self.name, round(self.setpoint_v * 1000))) % 7) - 3) * 1e-4
        return round(self.setpoint_v + ripple, 6)

    @property
    def guardband_fraction(self) -> float:
        """Current undervolt amount as a fraction of nominal."""
        return (self.nominal_v - self.setpoint_v) / self.nominal_v


@dataclass
class VoltageRegulator:
    """Software model of the on-board UCD9248 multi-rail controller."""

    rails: Dict[str, VoltageRail] = field(default_factory=dict)

    @classmethod
    def for_platform(cls, rail_names: Iterable[str] = (VCCBRAM, VCCINT, VCCAUX)) -> "VoltageRegulator":
        """Build a regulator with the standard rails at nominal voltage."""
        regulator = cls()
        for name in rail_names:
            regulator.add_rail(VoltageRail(name=name))
        return regulator

    def add_rail(self, rail: VoltageRail) -> None:
        """Register a rail with the controller."""
        if rail.name in self.rails:
            raise VoltageError(f"rail {rail.name} already registered")
        self.rails[rail.name] = rail

    def rail(self, name: str) -> VoltageRail:
        """Look up a rail by name."""
        try:
            return self.rails[name]
        except KeyError as exc:
            raise VoltageError(f"unknown rail {name!r}") from exc

    def set_voltage(self, name: str, volts: float) -> float:
        """Drive one rail to a new setpoint."""
        return self.rail(name).set(volts)

    def read_voltage(self, name: str) -> float:
        """Read one rail's output voltage."""
        return self.rail(name).read()

    def reset_all(self) -> None:
        """Return every rail to its nominal voltage (board power-on state)."""
        for rail in self.rails.values():
            rail.reset()

    def snapshot(self) -> Dict[str, float]:
        """Current setpoints of every rail, keyed by rail name."""
        return {name: rail.setpoint_v for name, rail in self.rails.items()}

    def sweep_points(
        self,
        name: str,
        start_v: float,
        stop_v: float,
        step_v: float = DEFAULT_STEP_V,
    ) -> List[float]:
        """Voltage points for a downward sweep from ``start_v`` to ``stop_v``.

        Both endpoints are included (the paper sweeps from ``Vmin`` down to
        ``Vcrash`` inclusive).  Points are quantized to the rail resolution.
        """
        if step_v <= 0:
            raise VoltageError("sweep step must be positive")
        if start_v < stop_v:
            raise VoltageError("downward sweep requires start_v >= stop_v")
        rail = self.rail(name)
        points: List[float] = []
        current = start_v
        while current > stop_v + 1e-9:
            points.append(rail.quantize(current))
            current -= step_v
        points.append(rail.quantize(stop_v))
        return points
