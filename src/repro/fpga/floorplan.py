"""Physical floorplan of BRAM sites on an FPGA die.

The paper builds a Fault Variation Map (FVM, Fig. 6 and Fig. 7) by mapping the
observed per-BRAM fault rates onto the physical X/Y location of every BRAM on
the die, as reported by Vivado's floorplan view.  Commercial 7-series devices
arrange BRAMs in vertical columns spread across the fabric, and a die may have
unused (empty) sites, which the paper draws as white boxes.

This module models exactly that structural information: a grid of *sites*,
each either populated by a BRAM (identified by a dense ``bram_index``) or
empty.  It carries no electrical state; the fault model and the harness attach
behaviour to the indices exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class FloorplanError(ValueError):
    """Raised for inconsistent floorplan definitions or out-of-range queries."""


@dataclass(frozen=True)
class BramSite:
    """A single physical BRAM site on the die.

    Attributes
    ----------
    x:
        Column index (0 = left-most BRAM column).
    y:
        Row index within the column (0 = bottom of the die).
    bram_index:
        Dense index of the BRAM occupying this site, or ``None`` for an empty
        site (white boxes in Fig. 6).
    """

    x: int
    y: int
    bram_index: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        """Whether the site has no BRAM placed on it."""
        return self.bram_index is None

    @property
    def name(self) -> str:
        """Vivado-style site name, e.g. ``RAMB18_X3Y17``."""
        return f"RAMB18_X{self.x}Y{self.y}"


@dataclass
class Floorplan:
    """Grid of BRAM sites for one FPGA die.

    Parameters
    ----------
    n_columns:
        Number of BRAM columns on the die.
    rows_per_column:
        Number of populated BRAM rows in each column.  Columns may have
        different heights; the grid height is the maximum.
    grid_height:
        Total number of site rows in the grid.  Sites above a column's
        populated height are empty.  Defaults to the tallest column.
    """

    n_columns: int
    rows_per_column: Sequence[int]
    grid_height: Optional[int] = None
    _sites: List[BramSite] = field(default_factory=list, repr=False)
    _by_coord: Dict[Tuple[int, int], BramSite] = field(default_factory=dict, repr=False)
    _by_index: Dict[int, BramSite] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.n_columns <= 0:
            raise FloorplanError("floorplan needs at least one BRAM column")
        if len(self.rows_per_column) != self.n_columns:
            raise FloorplanError(
                "rows_per_column must have one entry per column "
                f"({len(self.rows_per_column)} given for {self.n_columns} columns)"
            )
        if any(rows < 0 for rows in self.rows_per_column):
            raise FloorplanError("column heights must be non-negative")
        tallest = max(self.rows_per_column)
        if self.grid_height is None:
            self.grid_height = tallest
        if self.grid_height < tallest:
            raise FloorplanError("grid_height is smaller than the tallest column")
        self._build_sites()

    def _build_sites(self) -> None:
        index = 0
        for x in range(self.n_columns):
            populated = self.rows_per_column[x]
            for y in range(self.grid_height):
                if y < populated:
                    site = BramSite(x=x, y=y, bram_index=index)
                    self._by_index[index] = site
                    index += 1
                else:
                    site = BramSite(x=x, y=y, bram_index=None)
                self._sites.append(site)
                self._by_coord[(x, y)] = site

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def regular(cls, n_brams: int, n_columns: int, grid_height: Optional[int] = None) -> "Floorplan":
        """Build a floorplan for ``n_brams`` spread as evenly as possible.

        The first ``n_brams % n_columns`` columns get one extra BRAM, which is
        how real dies end up with ragged column tops.
        """
        if n_brams <= 0:
            raise FloorplanError("n_brams must be positive")
        if n_columns <= 0:
            raise FloorplanError("n_columns must be positive")
        base = n_brams // n_columns
        extra = n_brams % n_columns
        heights = [base + (1 if col < extra else 0) for col in range(n_columns)]
        return cls(n_columns=n_columns, rows_per_column=heights, grid_height=grid_height)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_brams(self) -> int:
        """Number of populated BRAM sites."""
        return len(self._by_index)

    @property
    def n_sites(self) -> int:
        """Total number of sites including empty ones."""
        return len(self._sites)

    def site_at(self, x: int, y: int) -> BramSite:
        """Return the site at grid coordinate ``(x, y)``."""
        try:
            return self._by_coord[(x, y)]
        except KeyError as exc:
            raise FloorplanError(f"no BRAM site at ({x}, {y})") from exc

    def site_of(self, bram_index: int) -> BramSite:
        """Return the physical site of the BRAM with dense index ``bram_index``."""
        try:
            return self._by_index[bram_index]
        except KeyError as exc:
            raise FloorplanError(f"no BRAM with index {bram_index}") from exc

    def coordinates(self, bram_index: int) -> Tuple[int, int]:
        """Physical ``(x, y)`` coordinate of a BRAM index."""
        site = self.site_of(bram_index)
        return site.x, site.y

    def index_at(self, x: int, y: int) -> Optional[int]:
        """BRAM index occupying ``(x, y)``, or ``None`` for an empty site."""
        return self.site_at(x, y).bram_index

    def iter_sites(self) -> Iterator[BramSite]:
        """Iterate over all sites in column-major order."""
        return iter(self._sites)

    def iter_brams(self) -> Iterator[BramSite]:
        """Iterate over populated sites only, in dense-index order."""
        for index in range(self.n_brams):
            yield self._by_index[index]

    def column_of(self, bram_index: int) -> int:
        """Column (X coordinate) of a BRAM index."""
        return self.site_of(bram_index).x

    def brams_in_column(self, x: int) -> List[int]:
        """Dense indices of all BRAMs located in column ``x``."""
        if not 0 <= x < self.n_columns:
            raise FloorplanError(f"column {x} out of range [0, {self.n_columns})")
        return [
            site.bram_index
            for site in self._sites
            if site.x == x and site.bram_index is not None
        ]

    def brams_in_region(self, x_range: Tuple[int, int], y_range: Tuple[int, int]) -> List[int]:
        """Dense indices of BRAMs within an inclusive rectangular region.

        This mirrors the rectangular Pblock regions Vivado lets a designer
        draw over the device view.
        """
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if x_lo > x_hi or y_lo > y_hi:
            raise FloorplanError("region bounds must satisfy lo <= hi")
        found: List[int] = []
        for site in self._sites:
            if site.bram_index is None:
                continue
            if x_lo <= site.x <= x_hi and y_lo <= site.y <= y_hi:
                found.append(site.bram_index)
        return sorted(found)

    def manhattan_distance(self, index_a: int, index_b: int) -> int:
        """Manhattan distance between two BRAMs, used by placement heuristics."""
        xa, ya = self.coordinates(index_a)
        xb, yb = self.coordinates(index_b)
        return abs(xa - xb) + abs(ya - yb)

    def to_grid(self) -> List[List[Optional[int]]]:
        """Return the floorplan as a dense ``[column][row]`` grid of indices."""
        grid: List[List[Optional[int]]] = []
        for x in range(self.n_columns):
            column = [self.index_at(x, y) for y in range(self.grid_height or 0)]
            grid.append(column)
        return grid

    def describe(self) -> str:
        """Human-readable one-line summary used in logs and bench output."""
        return (
            f"Floorplan({self.n_columns} columns x {self.grid_height} rows, "
            f"{self.n_brams} BRAMs, {self.n_sites - self.n_brams} empty sites)"
        )
