"""Pblock-style placement constraints.

Vivado's Physical Blocks (Pblocks) let a designer pin a set of logical cells
to a region of the die.  The paper's ICBP mitigation (Fig. 12b) uses exactly
this facility: the logical BRAMs holding the last NN layer's weights are
constrained to physical BRAMs previously tagged as low-vulnerable in the
chip's Fault Variation Map.

A :class:`Pblock` here is simply a named set of *allowed physical BRAM
indices* plus the list of *logical block names* constrained to it.  The placer
consumes these constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from .floorplan import Floorplan


class PblockError(ValueError):
    """Raised for malformed or unsatisfiable placement constraints."""


@dataclass
class Pblock:
    """A placement constraint: these logical blocks may only use these sites."""

    name: str
    allowed_sites: FrozenSet[int]
    constrained_blocks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise PblockError("a Pblock needs a non-empty name")
        self.allowed_sites = frozenset(int(i) for i in self.allowed_sites)
        self.constrained_blocks = tuple(self.constrained_blocks)
        if not self.allowed_sites:
            raise PblockError(f"Pblock {self.name!r} has no allowed sites")

    @classmethod
    def from_sites(cls, name: str, sites: Iterable[int], blocks: Sequence[str] = ()) -> "Pblock":
        """Build a Pblock from an explicit allow-list of physical BRAM indices."""
        return cls(name=name, allowed_sites=frozenset(sites), constrained_blocks=tuple(blocks))

    @classmethod
    def from_region(
        cls,
        name: str,
        floorplan: Floorplan,
        x_range: Tuple[int, int],
        y_range: Tuple[int, int],
        blocks: Sequence[str] = (),
    ) -> "Pblock":
        """Build a Pblock from a rectangular region of the floorplan.

        This is the shape of constraint a designer would draw interactively in
        Vivado; ICBP instead computes the allow-list from the FVM and uses
        :meth:`from_sites`.
        """
        sites = floorplan.brams_in_region(x_range, y_range)
        if not sites:
            raise PblockError(f"region for Pblock {name!r} contains no BRAM sites")
        return cls(name=name, allowed_sites=frozenset(sites), constrained_blocks=tuple(blocks))

    def constrain(self, *block_names: str) -> "Pblock":
        """Return a copy of this Pblock that also constrains ``block_names``."""
        combined = tuple(dict.fromkeys(self.constrained_blocks + block_names))
        return Pblock(name=self.name, allowed_sites=self.allowed_sites, constrained_blocks=combined)

    def allows(self, site_index: int) -> bool:
        """Whether a physical BRAM index is inside this Pblock."""
        return site_index in self.allowed_sites

    @property
    def capacity(self) -> int:
        """Number of physical BRAMs available inside the Pblock."""
        return len(self.allowed_sites)


@dataclass
class ConstraintSet:
    """A collection of Pblocks applied to one design compilation."""

    pblocks: List[Pblock] = field(default_factory=list)

    def add(self, pblock: Pblock) -> None:
        """Add a Pblock, rejecting duplicate names and doubly-constrained blocks."""
        if any(existing.name == pblock.name for existing in self.pblocks):
            raise PblockError(f"duplicate Pblock name {pblock.name!r}")
        already: Set[str] = set()
        for existing in self.pblocks:
            already.update(existing.constrained_blocks)
        clash = already.intersection(pblock.constrained_blocks)
        if clash:
            raise PblockError(f"blocks constrained by more than one Pblock: {sorted(clash)}")
        self.pblocks.append(pblock)

    def pblock_for(self, block_name: str) -> "Pblock | None":
        """The Pblock constraining ``block_name``, if any."""
        for pblock in self.pblocks:
            if block_name in pblock.constrained_blocks:
                return pblock
        return None

    def constrained_blocks(self) -> Set[str]:
        """All logical block names constrained by any Pblock."""
        names: Set[str] = set()
        for pblock in self.pblocks:
            names.update(pblock.constrained_blocks)
        return names

    def __len__(self) -> int:
        return len(self.pblocks)

    def __iter__(self):
        return iter(self.pblocks)
