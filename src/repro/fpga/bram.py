"""Block RAM (BRAM) storage model.

The studied 7-series devices expose BRAMs as small dual-ported memory blocks.
In the paper's basic setup every BRAM is a matrix of bitcells with 1024 rows
and 16 columns (16 Kbit of data; the two parity bits per row exist on silicon
but are excluded from the study).  BRAMs can be accessed individually or
cascaded into larger logical memories.

The classes here model *ideal* storage: writes are remembered exactly and
reads return what was written.  Voltage-induced bit flips are applied on top
of this ideal content by :mod:`repro.core.faultmodel` and the experiment host,
mirroring the hardware reality that undervolting corrupts the read-back data
while the written (intended) data is known to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Geometry of the basic-setup BRAM used throughout the paper.
DEFAULT_ROWS = 1024
DEFAULT_COLS = 16
BITS_PER_MBIT = 1_000_000


class BramError(ValueError):
    """Raised for out-of-range BRAM accesses or malformed payloads."""


def data_pattern(name_or_word: "str | int", rows: int = DEFAULT_ROWS) -> np.ndarray:
    """Expand a named or literal 16-bit pattern into a full BRAM image.

    The paper initializes BRAMs with repeating 16-bit words such as
    ``16'hFFFF`` or ``16'hAAAA`` (Fig. 4).  ``name_or_word`` may be:

    * an ``int`` in ``[0, 0xFFFF]`` — used for every row;
    * one of the strings ``"FFFF"``, ``"AAAA"``, ``"5555"``, ``"0000"``
      (case-insensitive, optional ``0x`` prefix);
    * the string ``"random50"`` — a deterministic pseudo-random image with
      50 % ones, matching the paper's random half-density pattern.
    """
    if isinstance(name_or_word, str):
        token = name_or_word.strip().lower().replace("0x", "").replace("16'h", "")
        if token == "random50":
            rng = np.random.default_rng(0x5050)
            return rng.integers(0, 2, size=(rows, DEFAULT_COLS), dtype=np.uint8)
        try:
            word = int(token, 16)
        except ValueError as exc:
            raise BramError(f"unknown data pattern {name_or_word!r}") from exc
    else:
        word = int(name_or_word)
    if not 0 <= word <= 0xFFFF:
        raise BramError(f"pattern word {word:#x} does not fit in 16 bits")
    bits = np.array([(word >> (DEFAULT_COLS - 1 - col)) & 1 for col in range(DEFAULT_COLS)], dtype=np.uint8)
    return np.tile(bits, (rows, 1))


@dataclass
class Bram:
    """One physical BRAM block: a ``rows x cols`` matrix of bitcells.

    Content is stored as a dense ``uint8`` bit matrix, which keeps the
    bit-level fault analyses (rate, location, flip direction) simple and
    exact.
    """

    index: int
    rows: int = DEFAULT_ROWS
    cols: int = DEFAULT_COLS
    _bits: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise BramError("BRAM geometry must be positive")
        if self._bits is None:
            self._bits = np.zeros((self.rows, self.cols), dtype=np.uint8)
        else:
            self._bits = np.asarray(self._bits, dtype=np.uint8)
            if self._bits.shape != (self.rows, self.cols):
                raise BramError(
                    f"initial content shape {self._bits.shape} does not match "
                    f"geometry ({self.rows}, {self.cols})"
                )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_bits(self) -> int:
        """Number of data bits in this BRAM (parity excluded)."""
        return self.rows * self.cols

    @property
    def size_kbits(self) -> float:
        """Capacity in Kbit, 16 for the basic-setup BRAM."""
        return self.n_bits / 1024.0

    # ------------------------------------------------------------------
    # Whole-block access
    # ------------------------------------------------------------------
    def fill(self, pattern: "str | int | np.ndarray") -> None:
        """Initialize every row with a 16-bit pattern or a full bit image."""
        if isinstance(pattern, np.ndarray):
            image = np.asarray(pattern, dtype=np.uint8)
            if image.shape != (self.rows, self.cols):
                raise BramError(
                    f"pattern image shape {image.shape} does not match BRAM "
                    f"geometry ({self.rows}, {self.cols})"
                )
            self._bits = image.copy()
        else:
            self._bits = data_pattern(pattern, rows=self.rows)[: self.rows, : self.cols].copy()

    def dump(self) -> np.ndarray:
        """Return a copy of the full bit image (``rows x cols`` uint8)."""
        return self._bits.copy()

    def load(self, image: np.ndarray) -> None:
        """Replace the full bit image; alias of :meth:`fill` for arrays."""
        self.fill(image)

    def clear(self) -> None:
        """Zero every bitcell, as a freshly configured BRAM does."""
        self._bits.fill(0)

    # ------------------------------------------------------------------
    # Word access
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise BramError(f"row {row} out of range [0, {self.rows})")

    def write_word(self, row: int, word: int) -> None:
        """Write one 16-bit word into ``row`` (bit 15 is column 0)."""
        self._check_row(row)
        if not 0 <= word < (1 << self.cols):
            raise BramError(f"word {word:#x} does not fit in {self.cols} bits")
        for col in range(self.cols):
            self._bits[row, col] = (word >> (self.cols - 1 - col)) & 1

    def read_word(self, row: int) -> int:
        """Read one row back as an integer word."""
        self._check_row(row)
        word = 0
        for col in range(self.cols):
            word = (word << 1) | int(self._bits[row, col])
        return word

    def write_words(self, words: Sequence[int], start_row: int = 0) -> None:
        """Write a contiguous run of words starting at ``start_row``."""
        if start_row < 0 or start_row + len(words) > self.rows:
            raise BramError(
                f"{len(words)} words starting at row {start_row} exceed {self.rows} rows"
            )
        for offset, word in enumerate(words):
            self.write_word(start_row + offset, word)

    def read_words(self, start_row: int = 0, count: Optional[int] = None) -> List[int]:
        """Read ``count`` consecutive words starting at ``start_row``."""
        if count is None:
            count = self.rows - start_row
        if start_row < 0 or count < 0 or start_row + count > self.rows:
            raise BramError("word range out of bounds")
        return [self.read_word(start_row + offset) for offset in range(count)]

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    def get_bit(self, row: int, col: int) -> int:
        """Read a single bitcell."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise BramError(f"column {col} out of range [0, {self.cols})")
        return int(self._bits[row, col])

    def set_bit(self, row: int, col: int, value: int) -> None:
        """Write a single bitcell."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise BramError(f"column {col} out of range [0, {self.cols})")
        self._bits[row, col] = 1 if value else 0

    def count_ones(self) -> int:
        """Number of bitcells currently holding logic ``1``."""
        return int(self._bits.sum())

    def ones_fraction(self) -> float:
        """Fraction of bitcells holding logic ``1``."""
        return self.count_ones() / self.n_bits

    def diff(self, observed: np.ndarray) -> List[Tuple[int, int, int, int]]:
        """Compare intended content against an observed read-back image.

        Returns a list of ``(row, col, expected, observed)`` tuples, one per
        mismatching bitcell.  This is the primitive the host uses to analyse
        the rate and location of undervolting faults.
        """
        observed = np.asarray(observed, dtype=np.uint8)
        if observed.shape != self._bits.shape:
            raise BramError("observed image shape does not match BRAM geometry")
        rows, cols = np.nonzero(self._bits != observed)
        return [
            (int(r), int(c), int(self._bits[r, c]), int(observed[r, c]))
            for r, c in zip(rows, cols)
        ]


@dataclass
class BramPool:
    """The full set of BRAM blocks on one chip (``B_0 .. B_N`` in Fig. 2)."""

    n_brams: int
    rows: int = DEFAULT_ROWS
    cols: int = DEFAULT_COLS
    _blocks: List[Bram] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_brams <= 0:
            raise BramError("a BRAM pool needs at least one block")
        if not self._blocks:
            self._blocks = [Bram(index=i, rows=self.rows, cols=self.cols) for i in range(self.n_brams)]

    def __len__(self) -> int:
        return self.n_brams

    def __iter__(self) -> Iterator[Bram]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Bram:
        if not 0 <= index < self.n_brams:
            raise BramError(f"BRAM index {index} out of range [0, {self.n_brams})")
        return self._blocks[index]

    @property
    def total_bits(self) -> int:
        """Total number of data bits across the pool."""
        return self.n_brams * self.rows * self.cols

    @property
    def total_mbits(self) -> float:
        """Total capacity in Mbit, the unit the paper reports fault rates in."""
        return self.total_bits / BITS_PER_MBIT

    def fill_all(self, pattern: "str | int | np.ndarray") -> None:
        """Initialize every BRAM in the pool with the same pattern."""
        for block in self._blocks:
            block.fill(pattern)

    def clear_all(self) -> None:
        """Zero the whole pool."""
        for block in self._blocks:
            block.clear()

    def count_ones(self) -> int:
        """Total number of ``1`` bits stored across the pool."""
        return sum(block.count_ones() for block in self._blocks)

    def subset(self, indices: Iterable[int]) -> List[Bram]:
        """Return the blocks with the given dense indices, in that order."""
        return [self[i] for i in indices]


@dataclass
class CascadedMemory:
    """A larger logical memory built by cascading consecutive BRAM blocks.

    FPGA designers cascade basic blocks to build deeper or wider memories
    (with some routing overhead).  The NN accelerator uses this to store each
    layer's weight array across several physical BRAMs.
    """

    name: str
    blocks: List[Bram]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise BramError(f"cascaded memory {self.name!r} needs at least one BRAM")
        cols = {block.cols for block in self.blocks}
        if len(cols) != 1:
            raise BramError("all cascaded blocks must share the same width")

    @property
    def depth(self) -> int:
        """Total number of addressable words."""
        return sum(block.rows for block in self.blocks)

    @property
    def width(self) -> int:
        """Word width in bits."""
        return self.blocks[0].cols

    def _locate(self, address: int) -> Tuple[Bram, int]:
        if not 0 <= address < self.depth:
            raise BramError(f"address {address} out of range [0, {self.depth})")
        remaining = address
        for block in self.blocks:
            if remaining < block.rows:
                return block, remaining
            remaining -= block.rows
        raise BramError(f"address {address} could not be located")  # pragma: no cover

    def write_word(self, address: int, word: int) -> None:
        """Write a word at a flat address across the cascade."""
        block, row = self._locate(address)
        block.write_word(row, word)

    def read_word(self, address: int) -> int:
        """Read a word from a flat address across the cascade."""
        block, row = self._locate(address)
        return block.read_word(row)

    def write_words(self, words: Sequence[int], start: int = 0) -> None:
        """Write a run of words starting at flat address ``start``."""
        if start < 0 or start + len(words) > self.depth:
            raise BramError("word run exceeds cascaded memory depth")
        for offset, word in enumerate(words):
            self.write_word(start + offset, word)

    def read_words(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Read a run of words starting at flat address ``start``."""
        if count is None:
            count = self.depth - start
        if start < 0 or count < 0 or start + count > self.depth:
            raise BramError("word range exceeds cascaded memory depth")
        return [self.read_word(start + offset) for offset in range(count)]
