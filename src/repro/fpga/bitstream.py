"""Design/bitstream abstraction and device configuration state.

On real hardware the experiments interact with a configured design: a
bitstream is loaded over JTAG, the DONE pin goes high, and from then on the
host talks to the design (BRAM read-back logic, UART bridge).  The paper notes
that below ``Vcrash`` the DONE pin is observed unset — the device effectively
loses its configuration and stops operating.

This module models that life-cycle:  a :class:`Design` bundles the logical
BRAMs and resource needs, :class:`ConfiguredDevice` tracks DONE/crash state as
a function of the applied ``VCCBRAM`` relative to the platform's crash
voltage, and raises :class:`CrashError` when the host keeps driving a crashed
device, mirroring the hung/garbage behaviour seen on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .placer import BramPlacer, LogicalBram, Placement
from .pblock import ConstraintSet
from .platform import FpgaChip
from .resources import ResourceBudget, Utilization


class CrashError(RuntimeError):
    """Raised when the design is operated below its crash voltage."""


class ConfigurationError(RuntimeError):
    """Raised for invalid configuration sequences (e.g. missing bitstream)."""


@dataclass
class Design:
    """A synthesized design: logical BRAMs plus non-BRAM resource needs."""

    name: str
    logical_brams: List[LogicalBram] = field(default_factory=list)
    dsp_used: int = 0
    ff_used: int = 0
    lut_used: int = 0
    frequency_mhz: float = 100.0

    def add_bram(self, name: str, group: str = "") -> LogicalBram:
        """Append one logical BRAM block to the design."""
        block = LogicalBram(name=name, group=group)
        self.logical_brams.append(block)
        return block

    def add_brams(self, names: Sequence[str], group: str = "") -> List[LogicalBram]:
        """Append several logical BRAM blocks sharing one group tag."""
        return [self.add_bram(name, group=group) for name in names]

    @property
    def n_brams(self) -> int:
        """Number of logical BRAM blocks in the design."""
        return len(self.logical_brams)

    def utilization_on(self, budget: ResourceBudget) -> Utilization:
        """Check the design against a device budget and return utilization."""
        util = Utilization(budget=budget)
        util.require("BRAM", self.n_brams)
        util.require("DSP", self.dsp_used)
        util.require("FF", self.ff_used)
        util.require("LUT", self.lut_used)
        return util


@dataclass
class Bitstream:
    """A compiled design: the design plus its placement on a specific device."""

    design: Design
    placement: Placement
    compile_seed: int = 0

    @property
    def name(self) -> str:
        """Design name carried by this bitstream."""
        return self.design.name


def compile_design(
    design: Design,
    chip: FpgaChip,
    constraints: Optional[ConstraintSet] = None,
    seed: int = 0,
    reserved_sites: Sequence[int] = (),
) -> Bitstream:
    """Run the placement step of the simplified FPGA flow (Fig. 12b).

    Synthesis and routing are outside the paper's scope; the reproduction's
    "compile" checks resource budgets and produces a placement, which is all
    the undervolting study needs.
    """
    budget = ResourceBudget.from_platform(chip.spec)
    design.utilization_on(budget)  # raises ResourceError when over budget
    placer = BramPlacer(floorplan=chip.floorplan, seed=seed)
    placement = placer.place(design.logical_brams, constraints=constraints, reserved_sites=reserved_sites)
    return Bitstream(design=design, placement=placement, compile_seed=seed)


@dataclass
class ConfiguredDevice:
    """A chip with a bitstream loaded; tracks DONE-pin / crash behaviour."""

    chip: FpgaChip
    bitstream: Optional[Bitstream] = None
    crash_voltage_v: float = 0.50
    done: bool = False

    def program(self, bitstream: Bitstream) -> None:
        """Load a bitstream over JTAG; DONE goes high at nominal voltage."""
        self.bitstream = bitstream
        self.done = True

    def check_operational(self) -> None:
        """Raise :class:`CrashError` if the device is below its crash voltage."""
        if self.bitstream is None:
            raise ConfigurationError("no bitstream loaded (DONE never asserted)")
        if self.chip.vccbram < self.crash_voltage_v - 1e-9:
            self.done = False
            raise CrashError(
                f"{self.chip.name}: VCCBRAM={self.chip.vccbram:.3f} V is below "
                f"Vcrash={self.crash_voltage_v:.3f} V; DONE pin de-asserted"
            )
        self.done = True

    @property
    def is_operational(self) -> bool:
        """Whether the design currently responds (DONE asserted)."""
        try:
            self.check_operational()
        except (CrashError, ConfigurationError):
            return False
        return True

    def recover(self) -> None:
        """Power-cycle recovery: rails back to nominal, bitstream reloaded."""
        self.chip.regulator.reset_all()
        if self.bitstream is not None:
            self.done = True
