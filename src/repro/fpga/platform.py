"""Descriptors and chip instances for the four studied FPGA platforms.

Table I of the paper lists the tested boards: VC707 (Virtex-7,
performance-optimized), ZC702 (Zynq-7000, hardware/software architecture) and
two identical samples of KC705 (Kintex-7, power-optimized) used to expose
die-to-die process variation.  All are 28 nm parts with 1024x16-bit basic
BRAMs and a 1.0 V nominal ``VCCBRAM``.

This module provides:

* :class:`PlatformSpec` — the static, datasheet-level description (Table I);
* :class:`FpgaChip` — one physical chip instance: a BRAM pool, a floorplan
  and a voltage regulator, seeded by its serial number so that two chips of
  the same platform are distinct dies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from .bram import DEFAULT_COLS, DEFAULT_ROWS, BramPool
from .floorplan import Floorplan
from .voltage import VCCAUX, VCCBRAM, VCCINT, VoltageRegulator


class PlatformError(ValueError):
    """Raised for unknown platforms or inconsistent specifications."""


@dataclass(frozen=True)
class PlatformSpec:
    """Datasheet-level description of one board (one row of Table I)."""

    name: str
    device_family: str
    chip_model: str
    speed_grade: str
    serial_number: str
    n_brams: int
    bram_rows: int = DEFAULT_ROWS
    bram_cols: int = DEFAULT_COLS
    process_nm: int = 28
    nominal_vccbram: float = 1.0
    nominal_vccint: float = 1.0
    design_goal: str = "general"
    #: Number of BRAM columns used when building the physical floorplan.
    floorplan_columns: int = 10
    #: Total DSP / FF / LUT resources (Table III gives the VC707 numbers).
    n_dsps: int = 0
    n_ffs: int = 0
    n_luts: int = 0

    @property
    def bram_kbits(self) -> float:
        """Capacity of one basic BRAM in Kbit."""
        return self.bram_rows * self.bram_cols / 1024.0

    @property
    def total_bram_mbits(self) -> float:
        """Total BRAM capacity of the device in Mbit."""
        return self.n_brams * self.bram_rows * self.bram_cols / 1_000_000.0

    def table_row(self) -> Dict[str, str]:
        """Render this spec as the strings reported in Table I."""
        return {
            "Hardware Platform (Board)": self.name,
            "Device Family": self.device_family,
            "Chip Model": self.chip_model,
            "Speed Grade": self.speed_grade,
            "Serial Number (S/N)": self.serial_number,
            "Number of BRAMs": str(self.n_brams),
            "Basic Size of Each BRAM": f"{self.bram_rows}*{self.bram_cols}-bits",
            "Manufacturing Process Technology": f"{self.process_nm}nm",
            "Nominal VCCBRAM (Vnom)": f"{self.nominal_vccbram:g}V",
        }


#: Table I of the paper, one spec per studied board.
VC707 = PlatformSpec(
    name="VC707",
    device_family="Virtex-7",
    chip_model="XC7VX485T-ffg1761-2",
    speed_grade="-2",
    serial_number="1308-6520",
    n_brams=2060,
    design_goal="performance",
    floorplan_columns=20,
    n_dsps=2800,
    n_ffs=303_600,
    n_luts=607_200,
)

ZC702 = PlatformSpec(
    name="ZC702",
    device_family="Zynq7000",
    chip_model="XC7Z020-CLG484-1",
    speed_grade="-1",
    serial_number="630851561533-44019",
    n_brams=280,
    design_goal="hardware-software",
    floorplan_columns=8,
    n_dsps=220,
    n_ffs=106_400,
    n_luts=53_200,
)

KC705_A = PlatformSpec(
    name="KC705-A",
    device_family="Kintex-7",
    chip_model="XC7K325T-ffg900-2",
    speed_grade="-2",
    serial_number="604018691749-76023",
    n_brams=890,
    design_goal="power",
    floorplan_columns=10,
    n_dsps=840,
    n_ffs=407_600,
    n_luts=203_800,
)

KC705_B = PlatformSpec(
    name="KC705-B",
    device_family="Kintex-7",
    chip_model="XC7K325T-ffg900-2",
    speed_grade="-2",
    serial_number="604016111717-65664",
    n_brams=890,
    design_goal="power",
    floorplan_columns=10,
    n_dsps=840,
    n_ffs=407_600,
    n_luts=203_800,
)

#: All platforms studied in the paper, in the order of Table I.
ALL_PLATFORMS: Tuple[PlatformSpec, ...] = (VC707, ZC702, KC705_A, KC705_B)

_PLATFORMS_BY_NAME: Dict[str, PlatformSpec] = {spec.name: spec for spec in ALL_PLATFORMS}


def get_platform(name: str) -> PlatformSpec:
    """Look up one of the studied platforms by board name (case-insensitive)."""
    key = name.strip().upper().replace("_", "-")
    for candidate, spec in _PLATFORMS_BY_NAME.items():
        if candidate.upper() == key:
            return spec
    raise PlatformError(
        f"unknown platform {name!r}; available: {', '.join(_PLATFORMS_BY_NAME)}"
    )


def platform_names() -> List[str]:
    """Names of all studied platforms, in Table I order."""
    return [spec.name for spec in ALL_PLATFORMS]


def fleet_spec(platform: "str | PlatformSpec", serial_number: str) -> PlatformSpec:
    """A platform spec for another die of the same part number.

    The paper's two KC705 boards demonstrate that dies sharing a part number
    carry unrelated fault maps; a *fleet* of simulated boards generalizes
    that observation.  Everything datasheet-level stays identical — only the
    serial number (and therefore the per-die seed) changes.  Passing the
    platform's own serial number returns the stock spec unchanged, so fleet
    chips containing a studied board reproduce it exactly.
    """
    spec = platform if isinstance(platform, PlatformSpec) else get_platform(platform)
    serial = serial_number.strip()
    if not serial:
        raise PlatformError("a fleet chip needs a non-empty serial number")
    if serial == spec.serial_number:
        return spec
    return replace(spec, serial_number=serial)


def fleet_serials(
    platform: "str | PlatformSpec",
    n_chips: int,
    serial_base: str = "SIM",
    include_stock: bool = True,
) -> Tuple[str, ...]:
    """Deterministic serial numbers for a simulated fleet of one platform.

    The first serial is the studied board's own (unless ``include_stock`` is
    false), so every fleet anchors on a die whose behaviour the paper
    publishes; the rest are synthetic ``<base>-<board>-<index>`` serials.
    """
    spec = platform if isinstance(platform, PlatformSpec) else get_platform(platform)
    if n_chips < 1:
        raise PlatformError("a fleet needs at least one chip")
    serials: List[str] = [spec.serial_number] if include_stock else []
    index = 1
    while len(serials) < n_chips:
        serials.append(f"{serial_base}-{spec.name}-{index:04d}")
        index += 1
    return tuple(serials)


def chip_seed(spec: PlatformSpec, salt: str = "") -> int:
    """Deterministic per-die seed derived from the board serial number.

    The fault model uses this seed so that two chips of the same platform
    (the two KC705 samples) get different process-variation fields, which is
    exactly what the paper attributes the 4.1x rate difference to.
    """
    digest = hashlib.sha256(f"{spec.chip_model}:{spec.serial_number}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FpgaChip:
    """One physical chip instance mounted on a board.

    Combines the static platform spec with the stateful pieces: a pool of
    ideal BRAM blocks, the physical floorplan used to build FVMs, and the
    multi-rail voltage regulator the host drives over PMBUS.
    """

    spec: PlatformSpec
    brams: BramPool = field(default=None, repr=False)  # type: ignore[assignment]
    floorplan: Floorplan = field(default=None, repr=False)  # type: ignore[assignment]
    regulator: VoltageRegulator = field(default=None, repr=False)  # type: ignore[assignment]
    #: Die temperature in Celsius as reported by the on-board sensor.
    board_temperature_c: float = 50.0

    def __post_init__(self) -> None:
        if self.brams is None:
            self.brams = BramPool(
                n_brams=self.spec.n_brams,
                rows=self.spec.bram_rows,
                cols=self.spec.bram_cols,
            )
        if self.floorplan is None:
            self.floorplan = Floorplan.regular(
                n_brams=self.spec.n_brams,
                n_columns=self.spec.floorplan_columns,
            )
        if self.regulator is None:
            self.regulator = VoltageRegulator.for_platform((VCCBRAM, VCCINT, VCCAUX))
        if self.floorplan.n_brams != self.spec.n_brams:
            raise PlatformError("floorplan BRAM count does not match platform spec")
        if len(self.brams) != self.spec.n_brams:
            raise PlatformError("BRAM pool size does not match platform spec")

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, platform: "str | PlatformSpec", serial: Optional[str] = None) -> "FpgaChip":
        """Convenience constructor from a platform name or spec.

        ``serial`` instantiates another die of the same part number (see
        :func:`fleet_spec`): same datasheet facts, different per-die seed and
        therefore a different process-variation field.
        """
        spec = platform if isinstance(platform, PlatformSpec) else get_platform(platform)
        if serial is not None:
            spec = fleet_spec(spec, serial)
        return cls(spec=spec)

    @property
    def name(self) -> str:
        """Board name, e.g. ``"VC707"``."""
        return self.spec.name

    @property
    def seed(self) -> int:
        """Per-die seed used by the fault model."""
        return chip_seed(self.spec)

    @property
    def vccbram(self) -> float:
        """Current VCCBRAM setpoint in volts."""
        return self.regulator.rail(VCCBRAM).setpoint_v

    @property
    def vccint(self) -> float:
        """Current VCCINT setpoint in volts."""
        return self.regulator.rail(VCCINT).setpoint_v

    def set_vccbram(self, volts: float) -> float:
        """Drive the BRAM supply rail."""
        return self.regulator.set_voltage(VCCBRAM, volts)

    def set_vccint(self, volts: float) -> float:
        """Drive the internal-logic supply rail."""
        return self.regulator.set_voltage(VCCINT, volts)

    def set_temperature(self, celsius: float) -> None:
        """Set the on-board (heat-chamber controlled) temperature."""
        if not -40.0 <= celsius <= 125.0:
            raise PlatformError(f"temperature {celsius} degC outside device ratings")
        self.board_temperature_c = float(celsius)

    def soft_reset(self) -> None:
        """Model the soft reset issued between voltage steps (Listing 1).

        BRAM contents survive a soft reset; only the rails return to their
        current setpoints (no change).  Provided as an explicit hook so the
        harness mirrors the paper's procedure.
        """
        # Intentionally a no-op on state: content and setpoints persist.
        return None

    def describe(self) -> str:
        """Human-readable summary for logs and bench output."""
        return (
            f"{self.spec.name} ({self.spec.device_family}, {self.spec.chip_model}, "
            f"{self.spec.n_brams} BRAMs, {self.spec.total_bram_mbits:.2f} Mbit, "
            f"S/N {self.spec.serial_number})"
        )
