"""FPGA resource budgets and utilization accounting.

Table III of the paper reports the resource utilization of the synthesized NN
accelerator on the VC707: 70.8 % of the 2060 BRAMs, 8.6 % of the 2800 DSPs,
3.8 % of the FFs and 4.9 % of the LUTs (and a second, larger configuration
with 58.3 % DSP / 13.1 % FF / 43.1 % LUT).  The reproduction keeps the same
bookkeeping so design-level checks ("does the weight set fit on this chip?")
behave like the real flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .platform import PlatformSpec


class ResourceError(ValueError):
    """Raised when a design over-subscribes the device resources."""


#: Canonical resource kinds tracked by the reproduction.
RESOURCE_KINDS = ("BRAM", "DSP", "FF", "LUT")


@dataclass(frozen=True)
class ResourceBudget:
    """Total resources available on a device."""

    bram: int
    dsp: int
    ff: int
    lut: int

    @classmethod
    def from_platform(cls, spec: PlatformSpec) -> "ResourceBudget":
        """Derive the budget from a platform spec (Table I / Table III totals)."""
        return cls(bram=spec.n_brams, dsp=spec.n_dsps, ff=spec.n_ffs, lut=spec.n_luts)

    def as_dict(self) -> Dict[str, int]:
        """Budget keyed by canonical resource kind."""
        return {"BRAM": self.bram, "DSP": self.dsp, "FF": self.ff, "LUT": self.lut}


@dataclass
class Utilization:
    """Running utilization of one design against a budget."""

    budget: ResourceBudget
    used: Dict[str, int] = field(default_factory=lambda: {kind: 0 for kind in RESOURCE_KINDS})

    def require(self, kind: str, amount: int) -> None:
        """Claim ``amount`` units of ``kind``, failing if the budget overflows."""
        if kind not in RESOURCE_KINDS:
            raise ResourceError(f"unknown resource kind {kind!r}")
        if amount < 0:
            raise ResourceError("resource amounts must be non-negative")
        total = self.budget.as_dict()[kind]
        if self.used[kind] + amount > total:
            raise ResourceError(
                f"design needs {self.used[kind] + amount} {kind} but device has {total}"
            )
        self.used[kind] += amount

    def release(self, kind: str, amount: int) -> None:
        """Return ``amount`` units of ``kind`` to the pool."""
        if kind not in RESOURCE_KINDS:
            raise ResourceError(f"unknown resource kind {kind!r}")
        if amount < 0 or amount > self.used[kind]:
            raise ResourceError("cannot release more than is in use")
        self.used[kind] -= amount

    def fraction(self, kind: str) -> float:
        """Utilized fraction of ``kind`` in ``[0, 1]``."""
        total = self.budget.as_dict()[kind]
        if total == 0:
            return 0.0
        return self.used[kind] / total

    def percent(self, kind: str) -> float:
        """Utilized percentage of ``kind``, as Table III reports it."""
        return 100.0 * self.fraction(kind)

    def report(self) -> Dict[str, float]:
        """Utilization percentages for every resource kind."""
        return {kind: self.percent(kind) for kind in RESOURCE_KINDS}

    def remaining(self, kind: str) -> int:
        """Unclaimed units of ``kind``."""
        return self.budget.as_dict()[kind] - self.used[kind]
