"""Logical-to-physical BRAM placement.

The FPGA design flow (Fig. 12b) synthesizes a design into logical BRAM blocks
and the placer assigns each one to a physical BRAM site.  The reproduction
models only the slice of that flow the paper exercises:

* a *default* placement that packs logical BRAMs onto physical sites in a
  deterministic but constraint-free order (what Vivado does absent guidance,
  and what the paper calls "default placement" in Fig. 14);
* a *constrained* placement honouring Pblock allow-lists, which is the whole
  mechanism behind ICBP.

Placement results are value objects mapping logical block names to physical
BRAM indices; the accelerator uses them to decide which physical BRAMs hold
which weights, and therefore which faults hit which NN layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .floorplan import Floorplan
from .pblock import ConstraintSet


class PlacementError(ValueError):
    """Raised when a design cannot be placed on the target device."""


@dataclass(frozen=True)
class LogicalBram:
    """One logical BRAM block produced by synthesis.

    Attributes
    ----------
    name:
        Unique block name, e.g. ``"layer4_weights_0"``.
    group:
        Free-form grouping tag (the NN accelerator uses the layer name), used
        for reporting and by placement policies.
    """

    name: str
    group: str = ""


@dataclass
class Placement:
    """Result of placing a design: logical block name -> physical BRAM index."""

    assignment: Dict[str, int] = field(default_factory=dict)

    def site_of(self, block_name: str) -> int:
        """Physical BRAM index assigned to a logical block."""
        try:
            return self.assignment[block_name]
        except KeyError as exc:
            raise PlacementError(f"block {block_name!r} is not placed") from exc

    def block_at(self, site_index: int) -> Optional[str]:
        """Logical block occupying a physical BRAM index, if any."""
        for name, index in self.assignment.items():
            if index == site_index:
                return name
        return None

    def used_sites(self) -> List[int]:
        """Physical BRAM indices claimed by the design, sorted."""
        return sorted(self.assignment.values())

    def blocks(self) -> List[str]:
        """Names of all placed logical blocks, in insertion order."""
        return list(self.assignment.keys())

    def __len__(self) -> int:
        return len(self.assignment)

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.assignment


@dataclass
class BramPlacer:
    """Deterministic placer over a chip floorplan.

    Parameters
    ----------
    floorplan:
        Physical BRAM layout of the target device.
    seed:
        Seed for the pseudo-random site ordering used by the default
        (unconstrained) placement.  Using a per-compilation seed mirrors the
        paper's observation that different place-and-route runs scatter the
        same logical BRAMs over different physical sites.
    """

    floorplan: Floorplan
    seed: int = 0

    def _site_order(self) -> List[int]:
        """Pseudo-random but reproducible order in which free sites are used."""
        rng = np.random.default_rng(self.seed)
        order = np.arange(self.floorplan.n_brams)
        rng.shuffle(order)
        return [int(i) for i in order]

    def place(
        self,
        blocks: Sequence[LogicalBram],
        constraints: Optional[ConstraintSet] = None,
        reserved_sites: Iterable[int] = (),
    ) -> Placement:
        """Assign every logical block a physical BRAM index.

        Constrained blocks are placed first, inside their Pblock allow-list;
        remaining blocks fill the rest of the device in the pseudo-random
        default order.  ``reserved_sites`` are excluded entirely (e.g. BRAMs
        used by unrelated infrastructure such as the UART bridge).
        """
        names = [block.name for block in blocks]
        if len(set(names)) != len(names):
            raise PlacementError("logical block names must be unique")
        if len(blocks) > self.floorplan.n_brams:
            raise PlacementError(
                f"design has {len(blocks)} logical BRAMs but device only has "
                f"{self.floorplan.n_brams}"
            )

        reserved = {int(i) for i in reserved_sites}
        for index in reserved:
            if not 0 <= index < self.floorplan.n_brams:
                raise PlacementError(f"reserved site {index} does not exist")

        assignment: Dict[str, int] = {}
        taken: set = set(reserved)

        # Pass 1: constrained blocks into their Pblocks.
        if constraints is not None:
            for block in blocks:
                pblock = constraints.pblock_for(block.name)
                if pblock is None:
                    continue
                candidates = [
                    site for site in sorted(pblock.allowed_sites)
                    if site not in taken and 0 <= site < self.floorplan.n_brams
                ]
                if not candidates:
                    raise PlacementError(
                        f"Pblock {pblock.name!r} has no free site left for block "
                        f"{block.name!r}"
                    )
                site = candidates[0]
                assignment[block.name] = site
                taken.add(site)

        # Pass 2: everything else in default order.
        free_order = [site for site in self._site_order() if site not in taken]
        cursor = 0
        for block in blocks:
            if block.name in assignment:
                continue
            if cursor >= len(free_order):
                raise PlacementError("ran out of free BRAM sites during placement")
            assignment[block.name] = free_order[cursor]
            cursor += 1

        # Preserve the design's block ordering in the result for readability.
        ordered = {block.name: assignment[block.name] for block in blocks}
        return Placement(assignment=ordered)

    def replace_compilation(self, new_seed: int) -> "BramPlacer":
        """A placer representing a fresh place-and-route run of the same design."""
        return BramPlacer(floorplan=self.floorplan, seed=new_seed)
