"""FPGA platform substrate: BRAMs, floorplan, voltage rails, placement.

This subpackage models the structural pieces of the studied Xilinx boards
(Table I of the paper): ideal BRAM storage, the physical floorplan used for
Fault Variation Maps, the multi-rail voltage regulator, resource budgets, and
the Pblock-constrained placement step that the ICBP mitigation hooks into.

Electrical misbehaviour under reduced voltage is deliberately *not* modelled
here; it lives in :mod:`repro.core` and is applied on top of the ideal storage
by the experiment harness.
"""

from .bram import (
    Bram,
    BramError,
    BramPool,
    CascadedMemory,
    DEFAULT_COLS,
    DEFAULT_ROWS,
    data_pattern,
)
from .bitstream import (
    Bitstream,
    ConfigurationError,
    ConfiguredDevice,
    CrashError,
    Design,
    compile_design,
)
from .floorplan import BramSite, Floorplan, FloorplanError
from .pblock import ConstraintSet, Pblock, PblockError
from .placer import BramPlacer, LogicalBram, Placement, PlacementError
from .platform import (
    ALL_PLATFORMS,
    FpgaChip,
    KC705_A,
    KC705_B,
    PlatformError,
    PlatformSpec,
    VC707,
    ZC702,
    chip_seed,
    fleet_serials,
    fleet_spec,
    get_platform,
    platform_names,
)
from .resources import ResourceBudget, ResourceError, Utilization
from .voltage import (
    DEFAULT_STEP_V,
    NOMINAL_VOLTAGE,
    VCCAUX,
    VCCBRAM,
    VCCINT,
    VoltageError,
    VoltageRail,
    VoltageRegulator,
)

__all__ = [
    "ALL_PLATFORMS",
    "Bitstream",
    "Bram",
    "BramError",
    "BramPlacer",
    "BramPool",
    "BramSite",
    "CascadedMemory",
    "ConfigurationError",
    "ConfiguredDevice",
    "ConstraintSet",
    "CrashError",
    "DEFAULT_COLS",
    "DEFAULT_ROWS",
    "DEFAULT_STEP_V",
    "Design",
    "Floorplan",
    "FloorplanError",
    "FpgaChip",
    "KC705_A",
    "KC705_B",
    "LogicalBram",
    "NOMINAL_VOLTAGE",
    "Pblock",
    "PblockError",
    "Placement",
    "PlacementError",
    "PlatformError",
    "PlatformSpec",
    "ResourceBudget",
    "ResourceError",
    "Utilization",
    "VC707",
    "VCCAUX",
    "VCCBRAM",
    "VCCINT",
    "VoltageError",
    "VoltageRail",
    "VoltageRegulator",
    "ZC702",
    "chip_seed",
    "compile_design",
    "data_pattern",
    "fleet_serials",
    "fleet_spec",
    "get_platform",
    "platform_names",
]
