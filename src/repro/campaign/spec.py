"""Declarative campaign specifications and their work-unit expansion.

A *campaign* runs a population of simulated boards — platforms x serial
ranges x temperatures x data patterns — through one of the paper's
measurement loops.  The spirit is the config-file-driven deployment practice
surveyed in PAPERS.md: the whole experiment is one declarative document
(:class:`CampaignSpec`, a plain dict/JSON round-trippable dataclass), which
expands deterministically into independent :class:`WorkUnit` s that the
runner shards over worker processes and the store persists one by one.

Determinism is load-bearing twice over:

* the expansion order and every unit's ``unit_id`` depend only on the spec,
  so an interrupted campaign resumes by skipping the ids already on disk;
* the ``spec_hash`` fingerprints the canonical JSON form, so a result store
  refuses to mix units from two different specs under one name.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.bram import BramError, data_pattern
from repro.fpga.platform import PlatformError, fleet_serials, get_platform
from repro.search import SearchError, validate_search_mode


class CampaignError(ValueError):
    """Raised for malformed campaign specs, stores or run requests."""


#: Measurement loops a campaign can drive, in documentation order.
SWEEP_KINDS: Tuple[str, ...] = ("guardband", "sweep", "fvm")

#: Default characterization search mode for campaigns.  Adaptive search is
#: the fleet path: certified bisection + cached evaluations produce
#: bit-identical threshold answers for a fraction of the evaluation cost
#: (``search: "exhaustive"`` opts a campaign back into full grid walks).
DEFAULT_SEARCH = "adaptive"


def _checked_search_mode(mode: str) -> str:
    """Validate a spec's search knob, converting to campaign errors."""
    try:
        return validate_search_mode(mode)
    except SearchError as exc:
        raise CampaignError(str(exc)) from exc

#: Campaign names become directory names under the result root, so they are
#: restricted to a safe character set (and cannot be ``.`` or ``..``).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _canonical_json(document: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for hashing and ids."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Chip groups
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChipGroup:
    """One platform's slice of the fleet: a part number plus serial numbers."""

    platform: str
    serials: Tuple[str, ...]

    def __post_init__(self) -> None:
        try:
            get_platform(self.platform)
        except PlatformError as exc:
            raise CampaignError(str(exc)) from exc
        object.__setattr__(self, "serials", tuple(str(s) for s in self.serials))
        if not self.serials:
            raise CampaignError(f"chip group {self.platform!r} has no serial numbers")
        if len(set(self.serials)) != len(self.serials):
            raise CampaignError(f"chip group {self.platform!r} repeats a serial number")

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ChipGroup":
        """Build a group from its JSON form.

        Two shapes are accepted: explicit ``{"platform", "serials": [...]}``,
        or generated ``{"platform", "n_chips": N, "serial_base"?, "include_stock"?}``
        which expands through :func:`repro.fpga.platform.fleet_serials`.
        """
        unknown = set(document) - {"platform", "serials", "n_chips", "serial_base", "include_stock"}
        if unknown:
            raise CampaignError(f"unknown chip-group keys: {sorted(unknown)}")
        platform = document.get("platform")
        if not platform:
            raise CampaignError("a chip group needs a 'platform'")
        if "serials" in document:
            if "n_chips" in document:
                raise CampaignError("give either 'serials' or 'n_chips', not both")
            return cls(platform=platform, serials=tuple(document["serials"]))
        if "n_chips" not in document:
            raise CampaignError("a chip group needs 'serials' or 'n_chips'")
        try:
            serials = fleet_serials(
                platform,
                int(document["n_chips"]),
                serial_base=document.get("serial_base", "SIM"),
                include_stock=bool(document.get("include_stock", True)),
            )
        except PlatformError as exc:
            raise CampaignError(str(exc)) from exc
        return cls(platform=platform, serials=serials)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (always the explicit-serials shape)."""
        return {"platform": self.platform, "serials": list(self.serials)}


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkUnit:
    """One independent chip measurement of a campaign.

    A unit fully determines its own execution — platform, die, chamber
    temperature, stored pattern, measurement loop, repetitions — so any
    worker process can run it in isolation and the result depends on nothing
    but these fields.
    """

    platform: str
    serial: str
    sweep: str
    pattern: str = "FFFF"
    temperature_c: float = REFERENCE_TEMPERATURE_C
    runs_per_step: int = 5
    search: str = DEFAULT_SEARCH

    def __post_init__(self) -> None:
        if self.sweep not in SWEEP_KINDS:
            raise CampaignError(
                f"unknown sweep kind {self.sweep!r}; expected one of {SWEEP_KINDS}"
            )
        if self.runs_per_step < 1:
            raise CampaignError("runs_per_step must be at least 1")
        object.__setattr__(self, "search", _checked_search_mode(self.search))

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of the unit descriptor.

        ``search`` is serialized only when it differs from the default, so
        the canonical document — and therefore :attr:`unit_id` — of a
        default-mode unit is unchanged from before the knob existed:
        stores written by older versions resume seamlessly.
        """
        document = {
            "platform": self.platform,
            "serial": self.serial,
            "sweep": self.sweep,
            "pattern": self.pattern,
            "temperature_c": self.temperature_c,
            "runs_per_step": self.runs_per_step,
        }
        if self.search != DEFAULT_SEARCH:
            document["search"] = self.search
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "WorkUnit":
        """Inverse of :meth:`to_dict`."""
        return cls(
            platform=document["platform"],
            serial=document["serial"],
            sweep=document["sweep"],
            pattern=document.get("pattern", "FFFF"),
            temperature_c=float(document.get("temperature_c", REFERENCE_TEMPERATURE_C)),
            runs_per_step=int(document.get("runs_per_step", 5)),
            search=document.get("search", DEFAULT_SEARCH),
        )

    @property
    def unit_id(self) -> str:
        """Deterministic id: a short digest of the canonical descriptor.

        Used as the on-disk file stem, so resuming a campaign recognizes
        completed units across processes and sessions.
        """
        digest = hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()
        return digest[:16]

    @property
    def chip_key(self) -> Tuple[str, str]:
        """The (platform, serial) pair identifying the die this unit needs."""
        return (self.platform, self.serial)


# ----------------------------------------------------------------------
# The campaign spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative description of one fleet campaign.

    The cross product ``chips x temperatures x patterns`` under one sweep
    kind expands into the campaign's work units; see :meth:`expand`.
    """

    name: str
    groups: Tuple[ChipGroup, ...]
    sweep: str = "guardband"
    temperatures_c: Tuple[float, ...] = (REFERENCE_TEMPERATURE_C,)
    patterns: Tuple[str, ...] = ("FFFF",)
    runs_per_step: int = 5
    search: str = DEFAULT_SEARCH
    #: Emit a governor-ready characterization bundle
    #: (``governor_bundle.json``, see :mod:`repro.runtime.characterization`)
    #: into the result store when the campaign run completes.  Only
    #: meaningful for guardband campaigns.
    governor_bundle: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "search", _checked_search_mode(self.search))
        if not _NAME_PATTERN.match(self.name):
            raise CampaignError(
                f"campaign name {self.name!r} must match {_NAME_PATTERN.pattern} "
                "(it becomes a directory name under the result root)"
            )
        object.__setattr__(self, "groups", tuple(self.groups))
        object.__setattr__(self, "temperatures_c", tuple(float(t) for t in self.temperatures_c))
        object.__setattr__(self, "patterns", tuple(str(p) for p in self.patterns))
        if not self.groups:
            raise CampaignError("a campaign needs at least one chip group")
        if self.sweep not in SWEEP_KINDS:
            raise CampaignError(
                f"unknown sweep kind {self.sweep!r}; expected one of {SWEEP_KINDS}"
            )
        if self.governor_bundle and self.sweep != "guardband":
            raise CampaignError(
                "governor_bundle requires a guardband campaign (the bundle "
                "carries Vmin/Vcrash thresholds)"
            )
        if not self.temperatures_c:
            raise CampaignError("a campaign needs at least one temperature")
        if len(set(self.temperatures_c)) != len(self.temperatures_c):
            raise CampaignError("temperatures_c repeats a value")
        for temperature in self.temperatures_c:
            # The chip's own operating range, checked here so a bad spec
            # fails at parse time, not inside a worker process.
            if not -40.0 <= temperature <= 125.0:
                raise CampaignError(
                    f"temperature {temperature} degC outside device ratings"
                )
        if not self.patterns:
            raise CampaignError("a campaign needs at least one data pattern")
        if len(set(self.patterns)) != len(self.patterns):
            raise CampaignError("patterns repeats a value")
        for pattern in self.patterns:
            try:
                data_pattern(pattern, rows=1)
            except BramError as exc:
                raise CampaignError(str(exc)) from exc
        if self.runs_per_step < 1:
            raise CampaignError("runs_per_step must be at least 1")
        seen = set()
        for group in self.groups:
            for serial in group.serials:
                key = (group.platform, serial)
                if key in seen:
                    raise CampaignError(f"chip {key} appears twice in the campaign")
                seen.add(key)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The spec's JSON document (the shape ``from_dict`` accepts)."""
        document = {
            "name": self.name,
            "chips": [group.to_dict() for group in self.groups],
            "sweep": self.sweep,
            "temperatures_c": list(self.temperatures_c),
            "patterns": list(self.patterns),
            "runs_per_step": self.runs_per_step,
        }
        # Serialized only off-default so the canonical document (and the
        # spec hash pinning every existing store's manifest) is unchanged
        # for adaptive campaigns; see WorkUnit.to_dict.  The same rule keeps
        # non-bundle campaigns' hashes stable across the governor_bundle
        # knob's introduction.
        if self.search != DEFAULT_SEARCH:
            document["search"] = self.search
        if self.governor_bundle:
            document["governor_bundle"] = True
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from its JSON document."""
        unknown = set(document) - {
            "name", "chips", "sweep", "temperatures_c", "patterns", "runs_per_step",
            "search", "governor_bundle",
        }
        if unknown:
            raise CampaignError(f"unknown campaign keys: {sorted(unknown)}")
        if "name" not in document:
            raise CampaignError("a campaign spec needs a 'name'")
        if "chips" not in document:
            raise CampaignError("a campaign spec needs a 'chips' list")
        return cls(
            name=document["name"],
            groups=tuple(ChipGroup.from_dict(entry) for entry in document["chips"]),
            sweep=document.get("sweep", "guardband"),
            temperatures_c=tuple(document.get("temperatures_c", (REFERENCE_TEMPERATURE_C,))),
            patterns=tuple(document.get("patterns", ("FFFF",))),
            runs_per_step=int(document.get("runs_per_step", 5)),
            search=document.get("search", DEFAULT_SEARCH),
            governor_bundle=bool(document.get("governor_bundle", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a spec from JSON text."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign spec is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise CampaignError("a campaign spec must be a JSON object")
        return cls.from_dict(document)

    def to_json(self) -> str:
        """Pretty JSON text of the spec (what ``from_json`` parses)."""
        return json.dumps(self.to_dict(), indent=2)

    @property
    def spec_hash(self) -> str:
        """Digest of the canonical JSON form; the store's compatibility key."""
        return hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def chips(self) -> List[Tuple[str, str]]:
        """Every (platform, serial) pair of the fleet, in expansion order."""
        return [
            (group.platform, serial) for group in self.groups for serial in group.serials
        ]

    def expand(self) -> Tuple[WorkUnit, ...]:
        """The campaign's work units: chips x temperatures x patterns.

        Units of one chip are adjacent so the runner's per-chip sharding is a
        simple ``groupby`` and each worker process reuses the die's memoized
        fault field across its units.
        """
        units: List[WorkUnit] = []
        for platform, serial in self.chips():
            for temperature in self.temperatures_c:
                for pattern in self.patterns:
                    units.append(
                        WorkUnit(
                            platform=platform,
                            serial=serial,
                            sweep=self.sweep,
                            pattern=pattern,
                            temperature_c=temperature,
                            runs_per_step=self.runs_per_step,
                            search=self.search,
                        )
                    )
        return tuple(units)

    @property
    def n_units(self) -> int:
        """Number of work units the spec expands into."""
        return len(self.chips()) * len(self.temperatures_c) * len(self.patterns)


# ----------------------------------------------------------------------
# Built-in presets
# ----------------------------------------------------------------------
def preset_spec(preset: str) -> CampaignSpec:
    """Built-in demonstration campaigns runnable without writing a file.

    * ``fleet16`` — the acceptance campaign: 16 chips over two platforms
      (8 ZC702 + 8 KC705-A dies, each fleet anchored on the studied board),
      guardband discovery per chip;
    * ``fleet16-fvm`` — the same fleet, extracting every die's Fault
      Variation Map for cross-chip similarity analysis;
    * ``fleet16-sweep`` — the same fleet through the Listing 1
      critical-region sweep;
    * ``fleet16-fast`` — a 4-chip, 2-runs-per-step cut of the guardband
      campaign for CI smoke steps (e.g. the store-migration check).
    """
    fleets = tuple(
        ChipGroup(platform=name, serials=fleet_serials(name, 8))
        for name in ("ZC702", "KC705-A")
    )
    fast_fleets = tuple(
        ChipGroup(platform=name, serials=fleet_serials(name, 2))
        for name in ("ZC702", "KC705-A")
    )
    presets = {
        "fleet16": CampaignSpec(name="fleet16", groups=fleets, sweep="guardband"),
        "fleet16-fvm": CampaignSpec(name="fleet16-fvm", groups=fleets, sweep="fvm"),
        "fleet16-sweep": CampaignSpec(name="fleet16-sweep", groups=fleets, sweep="sweep"),
        "fleet16-fast": CampaignSpec(
            name="fleet16-fast", groups=fast_fleets, sweep="guardband", runs_per_step=2
        ),
    }
    try:
        return presets[preset]
    except KeyError:
        raise CampaignError(
            f"unknown preset {preset!r}; available: {', '.join(sorted(presets))}"
        ) from None
