"""Fleet-scale campaigns: declarative specs, sharded execution, persistence.

This subpackage turns the one-board reproduction into a fleet simulator.  A
:class:`CampaignSpec` declares a population of simulated boards (platforms x
serial ranges x temperatures x data patterns) and one of the paper's
measurement loops; :func:`run_campaign` expands it into independent
:class:`WorkUnit` s, shards them per die over worker processes, and persists
each result to an on-disk :class:`CampaignStore` (``campaigns/<name>/``)
whose JSON commit markers make interrupted campaigns resumable.
:func:`build_report` aggregates the store into cross-chip population
statistics via :mod:`repro.analysis.fleet`.

See ``docs/campaigns.md`` for the spec format, sharding model, store layout
and resume semantics; the CLI front end is ``repro-undervolt campaign``.
"""

from .report import (
    SWEEP_METRIC_PATHS,
    CampaignReport,
    build_report,
    fvm_from_result,
    metrics_from_summary,
    unit_metrics,
)
from .runner import (
    CampaignRunReport,
    execute_unit,
    run_campaign,
    warm_model_from_store,
)
from .spec import (
    DEFAULT_SEARCH,
    SWEEP_KINDS,
    CampaignError,
    CampaignSpec,
    ChipGroup,
    WorkUnit,
    preset_spec,
)
from .store import DEFAULT_ROOT, CampaignStatus, CampaignStore, UnitResult
from .store_v2 import (
    CampaignStoreV2,
    MigrationReport,
    migrate_store,
    open_store,
    open_store_for_spec,
    store_digest,
)

__all__ = [
    "CampaignError",
    "CampaignReport",
    "CampaignRunReport",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignStore",
    "CampaignStoreV2",
    "ChipGroup",
    "DEFAULT_ROOT",
    "DEFAULT_SEARCH",
    "MigrationReport",
    "SWEEP_KINDS",
    "SWEEP_METRIC_PATHS",
    "UnitResult",
    "WorkUnit",
    "build_report",
    "execute_unit",
    "fvm_from_result",
    "metrics_from_summary",
    "migrate_store",
    "open_store",
    "open_store_for_spec",
    "preset_spec",
    "run_campaign",
    "store_digest",
    "unit_metrics",
    "warm_model_from_store",
]
