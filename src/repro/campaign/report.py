"""Aggregation of a campaign's per-unit results into fleet statistics.

Bridges the campaign store and :mod:`repro.analysis.fleet`: load every
completed unit, pull out the sweep-kind-specific scalar metrics, summarize
them as cross-chip distributions (whole fleet and per platform), and — for
FVM campaigns — run the Fig. 7 die-to-die comparison across every
same-part-number pair of the fleet.  Reports also total the per-unit search
accounting (:func:`repro.analysis.fleet.evaluation_totals`), publishing how
many fault-field evaluations adaptive search saved across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.fleet import (
    FleetDistribution,
    PairSimilarity,
    evaluation_totals,
    fvm_similarity,
    population_summary,
    similarity_extremes,
)
from repro.core.fvm import FaultVariationMap
from repro.fpga.floorplan import Floorplan
from repro.fpga.platform import get_platform

from .spec import CampaignError, CampaignSpec
from .store import CampaignStore, UnitResult

#: Scalar metrics aggregated per sweep kind (name -> key in the unit summary;
#: guardband metrics are assembled from the nested per-rail dict instead).
_SWEEP_METRICS = ("rate_at_vcrash_per_mbit", "power_at_vmin_w", "power_at_vcrash_w")
_FVM_METRICS = ("max_percent", "mean_percent", "never_faulty_fraction")

#: Per sweep kind: metric name -> key path into the unit summary.  The single
#: source of truth for what a fleet report aggregates; the v2 columnar store
#: (:mod:`repro.campaign.store_v2`) materializes exactly these as per-segment
#: metric columns at save time, which is what lets ``campaign report`` stream
#: them without reopening any per-unit summary.
SWEEP_METRIC_PATHS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "guardband": {
        "vccbram_vmin_v": ("rails", "VCCBRAM", "vmin_v"),
        "vccbram_vcrash_v": ("rails", "VCCBRAM", "vcrash_v"),
        "vccbram_guardband_fraction": ("rails", "VCCBRAM", "guardband_fraction"),
        "vccbram_power_reduction_at_vmin": (
            "rails", "VCCBRAM", "power_reduction_factor_at_vmin",
        ),
        "vccint_guardband_fraction": ("rails", "VCCINT", "guardband_fraction"),
    },
    "sweep": {name: (name,) for name in _SWEEP_METRICS},
    "fvm": {name: (name,) for name in _FVM_METRICS},
}


def metrics_from_summary(sweep: str, summary: Dict[str, Any]) -> Dict[str, float]:
    """The aggregatable scalars of one unit summary, keyed by metric name."""
    try:
        paths = SWEEP_METRIC_PATHS[sweep]
    except KeyError:
        raise CampaignError(f"unknown sweep kind {sweep!r}") from None
    metrics: Dict[str, float] = {}
    for name, path in paths.items():
        node: Any = summary
        for key in path:
            node = node[key]
        metrics[name] = float(node)
    return metrics


def unit_metrics(result: UnitResult) -> Dict[str, float]:
    """The aggregatable scalars of one unit, keyed by metric name."""
    return metrics_from_summary(result.unit.sweep, result.summary)


def fvm_from_result(result: UnitResult) -> FaultVariationMap:
    """Rebuild a :class:`FaultVariationMap` from a stored FVM unit."""
    if result.unit.sweep != "fvm":
        raise CampaignError(f"unit {result.unit_id} is not an FVM unit")
    spec = get_platform(result.unit.platform)
    floorplan = Floorplan.regular(n_brams=spec.n_brams, n_columns=spec.floorplan_columns)
    return FaultVariationMap.from_matrix(
        platform=result.unit.platform,
        floorplan=floorplan,
        voltages_v=[float(v) for v in result.arrays["voltages_v"]],
        counts=result.arrays["counts"],
        bram_bits=int(result.summary.get("bram_bits", spec.bram_rows * spec.bram_cols)),
    )


def _default_store_block() -> Dict[str, Any]:
    return {"version": 1}


@dataclass
class CampaignReport:
    """Fleet-level view of a (possibly partially) completed campaign.

    Built two ways: the v1 path materializes every completed
    :class:`UnitResult` in ``results``; the v2 streaming path
    (:func:`repro.campaign.store_v2.build_report_streaming`) never loads
    per-die objects and instead supplies the flat ``units`` rows directly,
    leaving ``results`` empty.  Both produce byte-identical ``to_dict()``
    documents (modulo the ``store`` block) for the same campaign data.
    """

    spec: CampaignSpec
    results: List[UnitResult]
    fleet: Dict[str, FleetDistribution]
    by_platform: Dict[str, Dict[str, FleetDistribution]]
    similarity: List[PairSimilarity] = field(default_factory=list)
    evaluations: Dict[str, Any] = field(default_factory=dict)
    #: Precomputed flat unit rows (streaming path); ``None`` derives them
    #: from ``results`` on demand.
    units: Optional[List[Dict[str, Any]]] = None
    #: Which store layout the report was built from (``{"version": ...}``).
    store: Dict[str, Any] = field(default_factory=_default_store_block)

    @property
    def n_completed(self) -> int:
        """Number of completed units the report aggregates."""
        if self.units is not None:
            return len(self.units)
        return len(self.results)

    def unit_rows(self) -> List[Dict[str, Any]]:
        """One flat row per completed unit (descriptor + metrics)."""
        if self.units is not None:
            return list(self.units)
        rows = []
        for result in self.results:
            row: Dict[str, Any] = {
                "unit_id": result.unit_id,
                "platform": result.unit.platform,
                "serial": result.unit.serial,
                "temperature_c": result.unit.temperature_c,
                "pattern": result.unit.pattern,
            }
            row.update(unit_metrics(result))
            rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``repro-undervolt campaign report --json``."""
        payload: Dict[str, Any] = {
            "name": self.spec.name,
            "sweep": self.spec.sweep,
            "spec_hash": self.spec.spec_hash,
            "n_units": self.spec.n_units,
            "n_completed": self.n_completed,
            "complete": self.n_completed == self.spec.n_units,
            "search": self.spec.search,
            "store": dict(self.store),
            "evaluations": dict(self.evaluations),
            "units": self.unit_rows(),
            "population": {
                "fleet": {m: d.as_dict() for m, d in self.fleet.items()},
                "by_platform": {
                    platform: {m: d.as_dict() for m, d in dists.items()}
                    for platform, dists in self.by_platform.items()
                },
            },
        }
        if self.similarity:
            payload["fvm_similarity"] = {
                "pairs": [pair.as_dict() for pair in self.similarity],
                "extremes": similarity_extremes(self.similarity),
            }
        return payload


def build_report(
    store: CampaignStore, spec: Optional[CampaignSpec] = None
) -> CampaignReport:
    """Aggregate a store's completed units into a :class:`CampaignReport`.

    Dispatches on the store layout: a v2 columnar store streams its metric
    columns segment by segment (no per-die object is ever materialized),
    while the v1 layout loads each unit's summary.  Both paths produce the
    same report document for the same campaign data.
    """
    if getattr(store, "store_version", 1) >= 2:
        # Imported lazily: store_v2 imports this module for the metric paths.
        from .store_v2 import build_report_streaming

        return build_report_streaming(store, spec)
    spec = spec or store.load_manifest()
    # Only the FVM similarity pass needs the array payloads; guardband and
    # sweep aggregation read nothing but the JSON scalar summaries.
    results = store.results(spec, with_arrays=spec.sweep == "fvm")
    if not results:
        raise CampaignError(
            f"campaign {spec.name!r} has no completed units to report on; "
            "run it first with 'campaign run'"
        )

    metric_names = list(unit_metrics(results[0]))
    fleet_values: Dict[str, List[float]] = {name: [] for name in metric_names}
    platform_values: Dict[str, Dict[str, List[float]]] = {}
    for result in results:
        metrics = unit_metrics(result)
        per_platform = platform_values.setdefault(
            result.unit.platform, {name: [] for name in metric_names}
        )
        for name, value in metrics.items():
            fleet_values[name].append(value)
            per_platform[name].append(value)

    similarity: List[PairSimilarity] = []
    if spec.sweep == "fvm":
        # Compare dies only under identical operating conditions: group the
        # fleet by (platform, temperature, pattern) and pair within groups.
        grouped: Dict[Tuple[str, float, str], Dict[str, FaultVariationMap]] = {}
        for result in results:
            key = (result.unit.platform, result.unit.temperature_c, result.unit.pattern)
            grouped.setdefault(key, {})[result.unit.serial] = fvm_from_result(result)
        for (platform, _temperature, _pattern), maps in sorted(grouped.items()):
            similarity.extend(fvm_similarity(maps, platform))

    return CampaignReport(
        spec=spec,
        results=results,
        fleet=population_summary(fleet_values),
        by_platform={
            platform: population_summary(values)
            for platform, values in sorted(platform_values.items())
        },
        similarity=similarity,
        evaluations=evaluation_totals(
            result.summary.get("search", {}) for result in results
        ),
        store=store._store_block() if hasattr(store, "_store_block") else {"version": 1},
    )
