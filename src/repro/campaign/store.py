"""On-disk campaign result store with resume semantics.

Layout under ``<root>/<campaign-name>/``::

    manifest.json           # the spec's JSON document + its spec_hash
    units/<unit_id>.npz     # the unit's array payload (written first)
    units/<unit_id>.json    # descriptor + scalar summary (the commit marker)
    cache/<die>.json        # per-die evaluation cache (adaptive search)

The JSON file is always written *after* the arrays and moved into place
atomically, so its existence is the single source of truth for "this unit
completed": a campaign killed mid-unit leaves at most a dangling ``.npz``
which the next run silently overwrites.  Re-running a campaign therefore
skips every unit whose JSON marker exists and executes only the remainder.

The manifest pins the spec hash.  Re-opening a store under the same name
with a *different* spec raises — two campaigns cannot interleave their units
in one directory.

This module is the *v1* (one file pair per unit) layout.  The manifest also
records a ``store_version`` (``1`` here, absent in stores written before the
field existed); :func:`repro.campaign.store_v2.open_store` dispatches on it
so readers handle both this layout and the segmented columnar v2 layout
(:mod:`repro.campaign.store_v2`) transparently.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.search import EvalCache

from .spec import CampaignError, CampaignSpec, WorkUnit

#: Default directory campaigns persist under (relative to the working dir).
DEFAULT_ROOT = "campaigns"


@dataclass
class UnitResult:
    """Everything one work unit produced.

    ``summary`` holds JSON-serializable scalars (nested dicts/lists are
    fine); ``arrays`` holds the numeric bulk that goes into the ``.npz``.
    """

    unit: WorkUnit
    summary: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def unit_id(self) -> str:
        """The owning unit's deterministic id."""
        return self.unit.unit_id


def _default_store_block() -> Dict[str, Any]:
    return {"version": 1}


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of a campaign against its spec."""

    name: str
    spec_hash: str
    sweep: str
    n_units: int
    completed: Tuple[str, ...]
    pending: Tuple[str, ...]
    #: On-disk layout the store uses (at least ``{"version": 1 or 2}``).
    store: Dict[str, Any] = field(default_factory=_default_store_block)

    @property
    def n_completed(self) -> int:
        """Number of units whose commit marker is on disk."""
        return len(self.completed)

    @property
    def n_pending(self) -> int:
        """Number of units a (re-)run would still execute."""
        return len(self.pending)

    @property
    def is_complete(self) -> bool:
        """Whether every unit of the spec has completed."""
        return not self.pending

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``repro-undervolt campaign status --json``."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "sweep": self.sweep,
            "n_units": self.n_units,
            "n_completed": self.n_completed,
            "n_pending": self.n_pending,
            "complete": self.is_complete,
            "store": dict(self.store),
            "pending_unit_ids": list(self.pending),
        }


class CampaignStore:
    """Files-on-disk persistence for one named campaign (v1 layout)."""

    #: Layout version this class reads and writes; the v2 subclass overrides.
    store_version = 1

    def __init__(self, name: str, root: "str | Path" = DEFAULT_ROOT) -> None:
        self.name = name
        self.root = Path(root)
        self.directory = self.root / name
        self.units_dir = self.directory / "units"
        self.cache_dir = self.directory / "cache"
        self.manifest_path = self.directory / "manifest.json"

    def _ensure_layout(self) -> None:
        """Create the layout-specific data directories."""
        self.units_dir.mkdir(parents=True, exist_ok=True)

    def _store_block(self) -> Dict[str, Any]:
        """The ``store`` block status/report JSON documents publish."""
        return {"version": self.store_version}

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, spec: CampaignSpec, root: "str | Path" = DEFAULT_ROOT) -> "CampaignStore":
        """Create (or re-open) the store for a spec, writing the manifest.

        Raises :class:`CampaignError` if the directory already belongs to a
        campaign with a different spec hash (or a different store version).
        """
        store = cls(spec.name, root)
        store._ensure_layout()
        if store.manifest_path.exists():
            existing = store.load_manifest()
            if existing.spec_hash != spec.spec_hash:
                raise CampaignError(
                    f"campaign directory {store.directory} holds spec hash "
                    f"{existing.spec_hash}, which does not match the requested "
                    f"spec ({spec.spec_hash}); use a different campaign name"
                )
            return store
        manifest = {
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash,
            "store_version": cls.store_version,
        }
        _atomic_write_json(store.manifest_path, manifest)
        return store

    def load_manifest(self) -> CampaignSpec:
        """The spec this store was created for (from ``manifest.json``).

        A manifest that is not valid JSON (or not a manifest document at
        all) raises :class:`CampaignError` with a one-line diagnosis — the
        CLI turns that into a clean non-zero exit instead of a traceback.
        A manifest recording a *different* store version also raises: the
        caller should have dispatched through
        :func:`repro.campaign.store_v2.open_store` instead.
        """
        document = read_manifest_document(self.manifest_path)
        version = int(document.get("store_version", 1))
        if version != self.store_version:
            raise CampaignError(
                f"campaign directory {self.directory} uses store version "
                f"{version}, not v{self.store_version}; open it through "
                "repro.campaign.open_store (the CLI does this automatically)"
            )
        try:
            spec = CampaignSpec.from_dict(document["spec"])
        except CampaignError:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise CampaignError(
                f"campaign manifest at {self.manifest_path} is corrupt "
                f"(not a manifest document: {exc}); restore it or use a fresh "
                "campaign name"
            ) from exc
        recorded = document.get("spec_hash")
        if recorded != spec.spec_hash:
            raise CampaignError(
                f"manifest at {self.manifest_path} does not match its own spec: "
                f"recorded hash {recorded}, recomputed {spec.spec_hash}.  Either "
                "the file was edited, or the store was written by an older "
                "version with a different spec schema; use a fresh campaign "
                "name or root"
            )
        return spec

    # ------------------------------------------------------------------
    # Unit persistence
    # ------------------------------------------------------------------
    def _json_path(self, unit_id: str) -> Path:
        return self.units_dir / f"{unit_id}.json"

    def _npz_path(self, unit_id: str) -> Path:
        return self.units_dir / f"{unit_id}.npz"

    def is_complete(self, unit: "WorkUnit | str") -> bool:
        """Whether a unit's commit marker exists."""
        unit_id = unit if isinstance(unit, str) else unit.unit_id
        return self._json_path(unit_id).exists()

    def completed_ids(self) -> Tuple[str, ...]:
        """Ids of every completed unit on disk, sorted."""
        if not self.units_dir.exists():
            return ()
        return tuple(sorted(p.stem for p in self.units_dir.glob("*.json")))

    def save(self, result: UnitResult) -> None:
        """Persist one unit result: arrays first, JSON commit marker last."""
        self.units_dir.mkdir(parents=True, exist_ok=True)
        unit_id = result.unit_id
        if result.arrays:
            with open(self._npz_path(unit_id), "wb") as handle:
                np.savez_compressed(handle, **result.arrays)
        document = {
            "unit_id": unit_id,
            "unit": result.unit.to_dict(),
            "summary": result.summary,
            "arrays": sorted(result.arrays),
        }
        _atomic_write_json(self._json_path(unit_id), document)

    def load(self, unit: "WorkUnit | str", with_arrays: bool = True) -> UnitResult:
        """Load one completed unit back.

        ``with_arrays=False`` skips the ``.npz`` payload — enough for
        aggregations that only need the scalar summaries, and much cheaper
        for large fleets of FVM count matrices.
        """
        unit_id = unit if isinstance(unit, str) else unit.unit_id
        json_path = self._json_path(unit_id)
        if not json_path.exists():
            raise CampaignError(f"unit {unit_id} has not completed in {self.directory}")
        try:
            document = json.loads(json_path.read_text())
            unit_descriptor = WorkUnit.from_dict(document["unit"])
        except CampaignError:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise CampaignError(
                f"unit result {json_path} is corrupt ({exc}); delete the file "
                "and re-run the campaign to re-execute the unit"
            ) from exc
        arrays: Dict[str, np.ndarray] = {}
        if with_arrays and document.get("arrays"):
            try:
                with np.load(self._npz_path(unit_id)) as payload:
                    arrays = {name: payload[name] for name in document["arrays"]}
            except (OSError, KeyError, ValueError) as exc:
                raise CampaignError(
                    f"array payload {self._npz_path(unit_id)} is corrupt or "
                    f"missing ({exc}); delete {json_path} and re-run the "
                    "campaign to re-execute the unit"
                ) from exc
        return UnitResult(
            unit=unit_descriptor,
            summary=document.get("summary", {}),
            arrays=arrays,
        )

    # ------------------------------------------------------------------
    # Per-die evaluation caches (adaptive search)
    # ------------------------------------------------------------------
    def _cache_path(self, platform: str, serial: str) -> Path:
        """File the die's evaluation cache persists under."""
        stem = re.sub(r"[^A-Za-z0-9._-]", "_", f"{platform}__{serial}")
        return self.cache_dir / f"{stem}.json"

    def save_eval_cache(self, cache: EvalCache) -> None:
        """Persist one die's evaluation cache (atomic, like unit markers).

        Written after every completed unit of an adaptive campaign, so a
        resumed (or re-run) campaign replays its probes from disk instead of
        the fault field — the "never re-evaluate a point" half of the
        adaptive-search contract.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self._cache_path(cache.platform, cache.serial), cache.to_document()
        )

    def load_eval_cache(self, platform: str, serial: str) -> EvalCache:
        """The die's persisted evaluation cache; empty if none (or stale).

        A cache that fails to parse degrades to an empty cache — adaptive
        searches then run cold, which is slower but never wrong.
        """
        path = self._cache_path(platform, serial)
        if path.exists():
            try:
                return EvalCache.from_document(json.loads(path.read_text()))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                pass
        return EvalCache(platform=platform, serial=serial)

    # ------------------------------------------------------------------
    # Spec-level views
    # ------------------------------------------------------------------
    def _validated_spec(self, spec: Optional[CampaignSpec]) -> CampaignSpec:
        """Resolve the spec to view the store through.

        ``None`` reads the manifest.  An explicit spec must match the
        manifest's recorded hash when one exists (same rule as :meth:`open`),
        so a spec file cannot silently be compared against a store that
        belongs to a different campaign; a store with no manifest yet
        ("not started") accepts any spec.  Only the hash is compared — the
        manifest's spec is not re-parsed into objects, which keeps the check
        O(manifest bytes) for 100k-serial fleets.
        """
        if spec is None:
            return self.load_manifest()
        if self.manifest_path.exists():
            stored_hash = read_manifest_document(self.manifest_path).get("spec_hash")
            if stored_hash != spec.spec_hash:
                raise CampaignError(
                    f"campaign directory {self.directory} holds spec hash "
                    f"{stored_hash}, which does not match the given "
                    f"spec ({spec.spec_hash})"
                )
        return spec

    def pending_units(self, spec: Optional[CampaignSpec] = None) -> Tuple[WorkUnit, ...]:
        """Units of the spec that have not completed, in expansion order."""
        spec = self._validated_spec(spec)
        return tuple(unit for unit in spec.expand() if not self.is_complete(unit))

    def results(
        self, spec: Optional[CampaignSpec] = None, with_arrays: bool = True
    ) -> List[UnitResult]:
        """Every completed unit of the spec, in expansion order."""
        spec = self._validated_spec(spec)
        return [
            self.load(unit, with_arrays=with_arrays)
            for unit in spec.expand()
            if self.is_complete(unit)
        ]

    def status(self, spec: Optional[CampaignSpec] = None) -> CampaignStatus:
        """Progress of the campaign against its spec."""
        spec = self._validated_spec(spec)
        units = spec.expand()
        completed = tuple(u.unit_id for u in units if self.is_complete(u))
        pending = tuple(u.unit_id for u in units if not self.is_complete(u))
        return CampaignStatus(
            name=spec.name,
            spec_hash=spec.spec_hash,
            sweep=spec.sweep,
            n_units=len(units),
            completed=completed,
            pending=pending,
            store=self._store_block(),
        )


def read_manifest_document(path: Path) -> Dict[str, Any]:
    """The raw manifest JSON document, with one-line errors on corruption."""
    if not path.exists():
        raise CampaignError(f"no campaign manifest at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"campaign manifest at {path} is corrupt "
            f"(not valid JSON: {exc}); restore it or use a fresh campaign name"
        ) from exc
    if not isinstance(document, dict):
        raise CampaignError(
            f"campaign manifest at {path} is corrupt (not a JSON object); "
            "restore it or use a fresh campaign name"
        )
    return document


def manifest_store_version(path: Path) -> int:
    """The ``store_version`` a manifest records (``1`` when absent)."""
    try:
        return int(read_manifest_document(path).get("store_version", 1))
    except (TypeError, ValueError) as exc:
        raise CampaignError(
            f"campaign manifest at {path} records an invalid store_version "
            f"({exc}); restore it or use a fresh campaign name"
        ) from exc


def _atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    """Write JSON via a temp file + rename so readers never see a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
