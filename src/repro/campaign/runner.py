"""Campaign execution: per-chip sharding over worker processes.

The expansion of a :class:`~repro.campaign.spec.CampaignSpec` is embarrassingly
parallel — every :class:`~repro.campaign.spec.WorkUnit` owns its chip, loop and
operating point — so the runner:

1. asks the store which units are still pending (resume semantics);
2. groups them into *shards*, one per (platform, serial) die, so each worker
   builds a die once and reuses its memoized fault field
   (:func:`repro.core.batch.cached_fault_field`) plus the batch engine's
   sorted-threshold caches across all of that die's units;
3. fans the shards out through the execution layer's scheduling substrate
   (:class:`repro.exec.WorkScheduler`: serial, thread or process workers,
   fork context where the platform offers it, bounded in-flight queue);
   every worker persists each of its units through the store the moment it
   finishes, so an interruption loses at most the in-flight unit per
   worker.

Everything a worker touches is module-level and deterministic, so results are
identical whether a campaign runs serially, across 2 workers or across 16,
on threads or on processes — and, for the guardband loop, bit-identical to
driving :class:`repro.harness.UndervoltingExperiment` by hand on the same
serial.  Within each unit, every operating-point evaluation goes through
the experiment's :class:`repro.exec.ExecutionEngine` (the per-die
evaluation cache rides behind it).

Adaptive campaigns (``spec.search == "adaptive"``, the default) add three
cost optimizations on top, none of which can change a result:

* every die's :class:`~repro.search.EvalCache` is loaded from the store
  before its shard runs and saved back after every unit, so resumed or
  re-run campaigns replay probes from disk;
* guardband discovery runs as certified bisection seeded by a
  :class:`~repro.search.WarmStartModel` built from the population already
  characterized (same part number first);
* for a cold fleet the runner executes one *scout* shard per platform
  first, then fans the rest out with warm brackets — which is where the
  order-of-magnitude evaluation saving of ``bench_adaptive_search`` comes
  from.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import cached_fault_field
from repro.exec import ExecError, WorkScheduler, validate_scheduler
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM, VCCINT
from repro.harness.sweep import UndervoltingExperiment
from repro.obs import trace as obs_trace
from repro.obs.progress import EventStream, callback_shim
from repro.search import EvalCache, WarmStartModel, merge_search_documents

from .spec import CampaignError, CampaignSpec, WorkUnit
from .store import DEFAULT_ROOT, CampaignStore, UnitResult
from .store_v2 import open_store, open_store_for_spec

#: Cap on dies kept alive per worker process; a filled VC707 pins ~34 MB.
_CHIP_CACHE_MAX = 4

_CHIP_CACHE: "OrderedDict[Tuple[str, str], FpgaChip]" = OrderedDict()
#: The chip cache is shared by every shard of a thread-scheduled campaign.
_CHIP_CACHE_LOCK = threading.Lock()


def _chip_for(platform: str, serial: str) -> FpgaChip:
    """The worker-local die instance for one (platform, serial) pair.

    Keeping the *instance* cached matters beyond construction cost:
    :func:`cached_fault_field` keys on chip identity, so a stable instance is
    what lets every unit of a shard share one fault field and flat table.
    """
    key = (platform, serial)
    with _CHIP_CACHE_LOCK:
        chip = _CHIP_CACHE.get(key)
        if chip is not None:
            _CHIP_CACHE.move_to_end(key)
            return chip
    chip = FpgaChip.build(platform, serial=serial)
    with _CHIP_CACHE_LOCK:
        _CHIP_CACHE[key] = chip
        if len(_CHIP_CACHE) > _CHIP_CACHE_MAX:
            _CHIP_CACHE.popitem(last=False)
    return chip


# ----------------------------------------------------------------------
# Unit execution (runs inside worker processes)
# ----------------------------------------------------------------------
def execute_unit(
    unit: WorkUnit,
    cache: Optional[EvalCache] = None,
    warm: Optional[WarmStartModel] = None,
) -> UnitResult:
    """Run one work unit to completion and return its result.

    Pure function of the unit descriptor: builds (or reuses) the die, sets
    the chamber temperature, and drives the requested measurement loop
    through the ordinary :class:`UndervoltingExperiment` — the same code path
    a single-board study uses, which is what makes campaign results directly
    comparable to the one-chip benchmarks.  ``cache`` and ``warm`` only
    shape the *cost* of adaptive units (certified bisection makes the
    results themselves mode-independent); both default to cold/empty.
    """
    chip = _chip_for(unit.platform, unit.serial)
    chip.set_temperature(unit.temperature_c)
    experiment = UndervoltingExperiment(
        chip, fault_field=cached_fault_field(chip), runs_per_step=unit.runs_per_step
    )
    adaptive = unit.search == "adaptive"
    if adaptive and cache is None:
        cache = EvalCache(platform=unit.platform, serial=unit.serial)
    if unit.sweep == "guardband":
        return _run_guardband(experiment, unit, cache, warm)
    if unit.sweep == "sweep":
        return _run_critical_region(experiment, unit, cache if adaptive else None)
    if unit.sweep == "fvm":
        return _run_fvm(experiment, unit, cache if adaptive else None)
    raise CampaignError(f"unit {unit.unit_id} has unknown sweep kind {unit.sweep!r}")


def _run_guardband(
    experiment: UndervoltingExperiment,
    unit: WorkUnit,
    cache: Optional[EvalCache],
    warm: Optional[WarmStartModel],
) -> UnitResult:
    """Fig. 1 loop on both rails; scalars per rail, VCCBRAM curve as arrays.

    ``runs_per_step`` maps onto the discovery loop's probe runs, so a
    campaign asking for more repetitions per voltage step gets them here
    too, not only in the critical-region sweep.  Adaptive units discover the
    same thresholds by certified bisection; their VCCBRAM curve arrays hold
    the certificate-decisive operating points only, so both the scalar
    summary and the array payload are independent of warm-start state and
    scheduling — only the ``search`` accounting (how many probes were paid)
    reflects the actual schedule.
    """
    rails: Dict[str, Dict[str, float]] = {}
    arrays: Dict[str, np.ndarray] = {}
    rail_searches: Dict[str, Dict[str, Any]] = {}
    for rail in (VCCBRAM, VCCINT):
        decisive_voltages = None
        if unit.search == "adaptive":
            outcome = experiment.discover_guardband_adaptive(
                rail=rail,
                pattern=unit.pattern,
                probe_runs=unit.runs_per_step,
                cache=cache,
                warm=warm,
            )
            measurement, sweep = outcome.measurement, outcome.sweep
            # Persist only the certificate-decisive operating points: which
            # *other* voltages a search happened to probe depends on the
            # warm-start state (and therefore on scheduling), while the
            # bracket points are a pure function of the die — keeping the
            # stored arrays identical across worker counts and resumes.
            decisive_voltages = {
                voltage
                for certificate in outcome.report.certificates
                for voltage in (
                    certificate.boundary_voltage_above,
                    certificate.boundary_voltage_below,
                )
                if voltage is not None
            }
        else:
            measurement, sweep = experiment.discover_guardband(
                rail=rail, pattern=unit.pattern, probe_runs=unit.runs_per_step
            )
        rail_searches[rail] = experiment.last_search_report.to_dict()
        rails[rail] = {
            "vnom_v": measurement.nominal_v,
            "vmin_v": measurement.vmin_v,
            "vcrash_v": measurement.vcrash_v,
            "guardband_fraction": measurement.guardband_fraction,
            "power_reduction_factor_at_vmin": measurement.power_reduction_factor_at_vmin,
        }
        if warm is not None:
            warm.add(unit.platform, rail, measurement.vmin_v, measurement.vcrash_v)
        if rail == VCCBRAM:
            steps = sweep.operational_steps()
            if decisive_voltages is not None:
                steps = [s for s in steps if s.voltage_v in decisive_voltages]
            arrays["vccbram_voltages_v"] = np.array([s.voltage_v for s in steps])
            arrays["vccbram_median_fault_counts"] = np.array(
                [s.median_fault_count for s in steps]
            )
            arrays["vccbram_power_w"] = np.array(
                [s.bram_power_w if s.bram_power_w is not None else np.nan for s in steps]
            )
    summary = {"rails": rails, "search": _search_summary(unit.search, rail_searches)}
    return UnitResult(unit=unit, summary=summary, arrays=arrays)


def _search_summary(
    mode: str, rail_searches: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """The unit-level search accounting stored in every summary."""
    totals = merge_search_documents(rail_searches.values())
    return {
        "mode": mode,
        "n_evaluations": totals["n_evaluations"],
        "n_cache_hits": totals["n_cache_hits"],
        "n_exhaustive_equivalent": totals["n_exhaustive_equivalent"],
        "evaluations_saved": totals["evaluations_saved"],
        "rails": {rail: dict(doc) for rail, doc in rail_searches.items()},
    }


def _run_critical_region(
    experiment: UndervoltingExperiment, unit: WorkUnit, cache: Optional[EvalCache]
) -> UnitResult:
    """Listing 1 loop: fault-rate and power series over the critical region."""
    result = experiment.critical_region_sweep(
        pattern=unit.pattern,
        n_runs=unit.runs_per_step,
        temperature_c=unit.temperature_c,
        cache=cache,
    )
    search = experiment.last_search_report.to_dict()
    search.pop("certificates", None)
    voltages = np.array(result.voltages())
    rates = np.array(result.fault_rates_per_mbit())
    powers = np.array([p if p is not None else np.nan for p in result.powers_w()])
    stds = np.array([step.fault_rate_std_per_mbit for step in result.steps])
    cal = experiment.calibration
    return UnitResult(
        unit=unit,
        summary={
            "vmin_v": cal.vmin_bram_v,
            "vcrash_v": cal.vcrash_bram_v,
            "rate_at_vcrash_per_mbit": float(rates[-1]),
            "power_at_vmin_w": float(powers[0]),
            "power_at_vcrash_w": float(powers[-1]),
            "search": {"mode": unit.search, **search},
        },
        arrays={
            "voltages_v": voltages,
            "median_rates_per_mbit": rates,
            "bram_power_w": powers,
            "rate_std_per_mbit": stds,
        },
    )


def _run_fvm(
    experiment: UndervoltingExperiment, unit: WorkUnit, cache: Optional[EvalCache]
) -> UnitResult:
    """FVM extraction: the (voltage x BRAM) count matrix plus its statistics."""
    fvm = experiment.extract_fvm(
        pattern=unit.pattern, temperature_c=unit.temperature_c, cache=cache
    )
    search = experiment.last_search_report.to_dict()
    search.pop("certificates", None)
    return UnitResult(
        unit=unit,
        summary={
            "n_brams": fvm.n_brams,
            "bram_bits": fvm.bram_bits,
            **fvm.statistics(),
            "search": {"mode": unit.search, **search},
        },
        arrays={
            "voltages_v": np.array(fvm.voltages_v),
            "counts": fvm.counts_matrix(),
        },
    )


def _execute_shard(
    units: Tuple[WorkUnit, ...],
    name: str,
    root: str,
    warm_document: Optional[Dict[str, Any]] = None,
    on_unit: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    warm_model: Optional[WarmStartModel] = None,
) -> List[Tuple[str, Dict[str, Any]]]:
    """Run one die's units back to back (the worker-side entry point).

    Each unit is persisted through the store *as soon as it finishes* —
    unit files are distinct and the JSON commit marker is renamed into
    place atomically, so concurrent workers never contend — which bounds
    what an interruption can lose to the single in-flight unit per worker.
    Adaptive shards load their die's evaluation cache first and save it
    back after every unit; the per-die cache file is owned by exactly one
    shard, so cache writes never contend either.  Returns
    ``(unit_id, search_summary)`` pairs for the parent's accounting.
    """
    store = open_store(name, root)
    adaptive = any(unit.search == "adaptive" for unit in units)
    cache: Optional[EvalCache] = None
    if adaptive and units:
        cache = store.load_eval_cache(units[0].platform, units[0].serial)
    if warm_model is not None:
        # In-process callers (the serial path) share one live model, so
        # every die after the first starts from the population so far.
        warm = warm_model
    elif warm_document is not None:
        warm = WarmStartModel.from_dict(warm_document)
    else:
        warm = WarmStartModel(step_v=DEFAULT_STEP_V)
    executed: List[Tuple[str, Dict[str, Any]]] = []
    die = f"{units[0].platform}/{units[0].serial}" if units else ""
    with obs_trace.span("campaign.shard", die=die, n_units=len(units)):
        for unit in units:
            with obs_trace.span("campaign.unit", unit=unit.unit_id):
                result = execute_unit(unit, cache=cache, warm=warm)
                # Cache first, commit marker last: a marker on disk implies
                # its probes are in the cache, so losing the in-flight unit
                # can never cost more than re-running it from cached
                # evaluations.
                if cache is not None and unit.search == "adaptive":
                    store.save_eval_cache(cache)
                store.save(result)
            executed.append((result.unit_id, result.summary.get("search", {})))
            if on_unit is not None:
                on_unit(result.unit_id, result.summary.get("search", {}))
    return executed


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignRunReport:
    """What one ``run_campaign`` invocation actually did."""

    name: str
    spec_hash: str
    n_units: int
    executed: Tuple[str, ...]
    skipped: Tuple[str, ...]
    n_workers: int
    search: str = "adaptive"
    #: Shard scheduling substrate the run used (see :mod:`repro.exec`).
    scheduler: str = "process"
    evaluations: Dict[str, Any] = field(default_factory=dict)
    #: Path of the emitted governor bundle (``governor_bundle`` spec knob),
    #: or ``None`` when the campaign does not emit one.
    governor_bundle: Optional[str] = None
    #: On-disk layout version of the store the run wrote into.
    store_version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``repro-undervolt campaign run --json``."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "n_units": self.n_units,
            "n_executed": len(self.executed),
            "n_skipped": len(self.skipped),
            "n_workers": self.n_workers,
            "search": self.search,
            "backend": {
                "kind": "simulated",
                "scheduler": self.scheduler,
                "jobs": self.n_workers,
                "source": None,
                "counters": None,
            },
            "store": {"version": self.store_version},
            "evaluations": dict(self.evaluations),
            "executed_unit_ids": list(self.executed),
            "governor_bundle": self.governor_bundle,
        }


def _shards(units: Sequence[WorkUnit]) -> List[Tuple[WorkUnit, ...]]:
    """Group units by die, preserving expansion order within and across shards."""
    grouped: "OrderedDict[Tuple[str, str], List[WorkUnit]]" = OrderedDict()
    for unit in units:
        grouped.setdefault(unit.chip_key, []).append(unit)
    return [tuple(batch) for batch in grouped.values()]


def warm_model_from_store(
    store: CampaignStore, spec: CampaignSpec
) -> WarmStartModel:
    """Seed a warm-start model from a campaign's completed guardband units.

    Reads only the JSON scalar summaries (no array payloads), so it stays
    cheap even for large fleets; non-guardband campaigns yield an empty
    model, which downstream searches treat as cold.
    """
    model = WarmStartModel(step_v=DEFAULT_STEP_V)
    if spec.sweep != "guardband":
        return model
    for result in store.results(spec, with_arrays=False):
        for rail, data in result.summary.get("rails", {}).items():
            model.add(result.unit.platform, rail, data["vmin_v"], data["vcrash_v"])
    return model


def _scout_waves(
    shards: List[Tuple[WorkUnit, ...]], warm: WarmStartModel
) -> List[List[Tuple[WorkUnit, ...]]]:
    """Split shards into a scout wave and the warm remainder.

    One shard per platform that the warm model knows nothing about runs
    first (the *scouts*); every other shard then starts from the scouts'
    discovered quantiles.  Platforms already represented in the model — a
    resumed campaign, or a fleet sharing its store with an earlier one —
    need no scout and go straight to the warm wave.
    """
    known = {platform for (platform, _rail) in warm.observations}
    scouts: "OrderedDict[str, Tuple[WorkUnit, ...]]" = OrderedDict()
    rest: List[Tuple[WorkUnit, ...]] = []
    for shard in shards:
        platform = shard[0].platform
        if platform not in known and platform not in scouts:
            scouts[platform] = shard
        else:
            rest.append(shard)
    waves = []
    if scouts:
        waves.append(list(scouts.values()))
    if rest:
        waves.append(rest)
    return waves


def run_campaign(
    spec: CampaignSpec,
    root: "str | os.PathLike" = DEFAULT_ROOT,
    max_workers: Optional[int] = None,
    use_processes: bool = True,
    progress: Optional[Callable[[str, int, int], None]] = None,
    scheduler: Optional[str] = None,
    store_version: Optional[int] = None,
    events: Optional[EventStream] = None,
) -> CampaignRunReport:
    """Run (or resume) a campaign, persisting every unit as it completes.

    Parameters
    ----------
    spec:
        The declarative campaign; its name selects the store directory.
    root:
        Directory the result store lives under (default ``campaigns/``).
    max_workers:
        Worker cap; defaults to ``min(n_shards, cpu_count)``.  ``1`` (or
        the serial scheduler) runs everything in this process.
    use_processes:
        Legacy knob: ``False`` forces the serial scheduler.  Prefer
        ``scheduler``.
    progress:
        Optional callback ``(unit_id, n_done, n_total)`` fired as units
        complete — per unit when running serially, per finished shard when
        running parallel (workers persist their own units; the parent only
        learns of them when a shard resolves).  The CLI uses it for live
        status lines.  Kept as a compatibility shim: it is subscribed to
        the run's event stream via
        :func:`repro.obs.progress.callback_shim`.
    events:
        Optional :class:`repro.obs.progress.EventStream` receiving
        ``campaign.progress`` events (fields ``unit_id``/``done``/
        ``pending``) as units complete; the run builds a private stream
        when none is given.  Every event is also recorded on the active
        trace recorder.
    scheduler:
        Shard scheduling substrate from :data:`repro.exec.SCHEDULERS`
        (``serial`` / ``thread`` / ``process``); defaults to ``process``
        (or ``serial`` when ``use_processes`` is false).
    store_version:
        On-disk layout for a *fresh* campaign (``1`` per-unit files, ``2``
        segmented columnar; default v1).  An existing store keeps its
        version — asking for a conflicting one raises.
    """
    if scheduler is None:
        scheduler = "process" if use_processes else "serial"
    try:
        scheduler = validate_scheduler(scheduler)
    except ExecError as exc:
        raise CampaignError(str(exc)) from None
    store = open_store_for_spec(spec, root, store_version=store_version)
    all_units = spec.expand()
    skipped = tuple(u.unit_id for u in all_units if store.is_complete(u))
    skipped_ids = set(skipped)
    pending = [u for u in all_units if u.unit_id not in skipped_ids]
    shards = _shards(pending)

    if max_workers is None:
        max_workers = min(len(shards), os.cpu_count() or 1) or 1
    if max_workers < 1:
        raise CampaignError("max_workers must be at least 1")
    serial = scheduler == "serial" or max_workers == 1 or len(shards) <= 1

    executed: List[str] = []
    search_documents: List[Dict[str, Any]] = []
    stream = events if events is not None else EventStream()
    if progress is not None:
        stream.subscribe(callback_shim(progress))

    def _record(results: Sequence[Tuple[str, Dict[str, Any]]]) -> None:
        for unit_id, search_document in results:
            executed.append(unit_id)
            search_documents.append(search_document)
            stream.emit(
                "campaign.progress",
                unit_id=unit_id,
                done=len(executed),
                pending=len(pending),
            )

    warm_starting = spec.search == "adaptive" and spec.sweep == "guardband"
    warm = warm_model_from_store(store, spec) if warm_starting else None

    with obs_trace.span(
        "campaign.run", name=spec.name, sweep=spec.sweep, search=spec.search
    ):
        if serial:
            n_workers = 1
            scheduler = "serial"
            # One live warm model, shared across shards: every die after the
            # first of its platform starts from the population so far (each
            # shard's _run_guardband feeds its thresholds back via warm.add).
            for shard in shards:
                _execute_shard(
                    shard,
                    spec.name,
                    str(root),
                    on_unit=lambda unit_id, doc: _record([(unit_id, doc)]),
                    warm_model=warm,
                )
        else:
            n_workers = min(max_workers, len(shards))
            waves = _scout_waves(shards, warm) if warm is not None else [shards]
            # One worker pool for the whole run: the context manager keeps it
            # alive across the scout and warm waves.
            with WorkScheduler(scheduler=scheduler, jobs=n_workers) as work:
                for wave_index, wave in enumerate(waves):
                    if warm_starting and wave_index > 0:
                        warm = warm_model_from_store(store, spec)
                    warm_document = warm.to_dict() if warm is not None else None
                    with obs_trace.span(
                        "campaign.wave", wave=wave_index, n_shards=len(wave)
                    ):
                        work.map_tasks(
                            _execute_shard,
                            [
                                (shard, spec.name, str(root), warm_document)
                                for shard in wave
                            ],
                            on_result=lambda _index, results: _record(results),
                        )

    bundle_file: Optional[str] = None
    if spec.governor_bundle and store.status(spec).is_complete:
        # Imported lazily: the runtime layer sits above the campaign layer.
        from repro.runtime.characterization import write_governor_bundle

        bundle_file = str(write_governor_bundle(store, spec))

    return CampaignRunReport(
        name=spec.name,
        spec_hash=spec.spec_hash,
        n_units=len(all_units),
        executed=tuple(executed),
        skipped=skipped,
        n_workers=n_workers,
        search=spec.search,
        scheduler=scheduler,
        evaluations=merge_search_documents(search_documents),
        governor_bundle=bundle_file,
        store_version=store.store_version,
    )
