"""Campaign execution: per-chip sharding over worker processes.

The expansion of a :class:`~repro.campaign.spec.CampaignSpec` is embarrassingly
parallel — every :class:`~repro.campaign.spec.WorkUnit` owns its chip, loop and
operating point — so the runner:

1. asks the store which units are still pending (resume semantics);
2. groups them into *shards*, one per (platform, serial) die, so each worker
   builds a die once and reuses its memoized fault field
   (:func:`repro.core.batch.cached_fault_field`) plus the batch engine's
   sorted-threshold caches across all of that die's units;
3. fans the shards out over a ``concurrent.futures.ProcessPoolExecutor``
   (fork context where the platform offers it); every worker persists each
   of its units through the store the moment it finishes, so an
   interruption loses at most the in-flight unit per worker.

Everything a worker touches is module-level and deterministic, so results are
identical whether a campaign runs serially, across 2 workers or across 16 —
and, for the guardband loop, bit-identical to driving
:class:`repro.harness.UndervoltingExperiment` by hand on the same serial.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import cached_fault_field
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness.sweep import UndervoltingExperiment

from .spec import CampaignError, CampaignSpec, WorkUnit
from .store import DEFAULT_ROOT, CampaignStore, UnitResult

#: Cap on dies kept alive per worker process; a filled VC707 pins ~34 MB.
_CHIP_CACHE_MAX = 4

_CHIP_CACHE: "OrderedDict[Tuple[str, str], FpgaChip]" = OrderedDict()


def _chip_for(platform: str, serial: str) -> FpgaChip:
    """The worker-local die instance for one (platform, serial) pair.

    Keeping the *instance* cached matters beyond construction cost:
    :func:`cached_fault_field` keys on chip identity, so a stable instance is
    what lets every unit of a shard share one fault field and flat table.
    """
    key = (platform, serial)
    chip = _CHIP_CACHE.get(key)
    if chip is None:
        chip = FpgaChip.build(platform, serial=serial)
        _CHIP_CACHE[key] = chip
        if len(_CHIP_CACHE) > _CHIP_CACHE_MAX:
            _CHIP_CACHE.popitem(last=False)
    else:
        _CHIP_CACHE.move_to_end(key)
    return chip


# ----------------------------------------------------------------------
# Unit execution (runs inside worker processes)
# ----------------------------------------------------------------------
def execute_unit(unit: WorkUnit) -> UnitResult:
    """Run one work unit to completion and return its result.

    Pure function of the unit descriptor: builds (or reuses) the die, sets
    the chamber temperature, and drives the requested measurement loop
    through the ordinary :class:`UndervoltingExperiment` — the same code path
    a single-board study uses, which is what makes campaign results directly
    comparable to the one-chip benchmarks.
    """
    chip = _chip_for(unit.platform, unit.serial)
    chip.set_temperature(unit.temperature_c)
    experiment = UndervoltingExperiment(
        chip, fault_field=cached_fault_field(chip), runs_per_step=unit.runs_per_step
    )
    if unit.sweep == "guardband":
        return _run_guardband(experiment, unit)
    if unit.sweep == "sweep":
        return _run_critical_region(experiment, unit)
    if unit.sweep == "fvm":
        return _run_fvm(experiment, unit)
    raise CampaignError(f"unit {unit.unit_id} has unknown sweep kind {unit.sweep!r}")


def _run_guardband(experiment: UndervoltingExperiment, unit: WorkUnit) -> UnitResult:
    """Fig. 1 loop on both rails; scalars per rail, VCCBRAM curve as arrays.

    ``runs_per_step`` maps onto the discovery loop's probe runs, so a
    campaign asking for more repetitions per voltage step gets them here
    too, not only in the critical-region sweep.
    """
    rails: Dict[str, Dict[str, float]] = {}
    arrays: Dict[str, np.ndarray] = {}
    for rail in (VCCBRAM, VCCINT):
        measurement, sweep = experiment.discover_guardband(
            rail=rail, pattern=unit.pattern, probe_runs=unit.runs_per_step
        )
        rails[rail] = {
            "vnom_v": measurement.nominal_v,
            "vmin_v": measurement.vmin_v,
            "vcrash_v": measurement.vcrash_v,
            "guardband_fraction": measurement.guardband_fraction,
            "power_reduction_factor_at_vmin": measurement.power_reduction_factor_at_vmin,
        }
        if rail == VCCBRAM:
            steps = sweep.operational_steps()
            arrays["vccbram_voltages_v"] = np.array([s.voltage_v for s in steps])
            arrays["vccbram_median_fault_counts"] = np.array(
                [s.median_fault_count for s in steps]
            )
            arrays["vccbram_power_w"] = np.array(
                [s.bram_power_w if s.bram_power_w is not None else np.nan for s in steps]
            )
    return UnitResult(unit=unit, summary={"rails": rails}, arrays=arrays)


def _run_critical_region(experiment: UndervoltingExperiment, unit: WorkUnit) -> UnitResult:
    """Listing 1 loop: fault-rate and power series over the critical region."""
    result = experiment.critical_region_sweep(
        pattern=unit.pattern, n_runs=unit.runs_per_step, temperature_c=unit.temperature_c
    )
    voltages = np.array(result.voltages())
    rates = np.array(result.fault_rates_per_mbit())
    powers = np.array([p if p is not None else np.nan for p in result.powers_w()])
    stds = np.array([step.fault_rate_std_per_mbit for step in result.steps])
    cal = experiment.calibration
    return UnitResult(
        unit=unit,
        summary={
            "vmin_v": cal.vmin_bram_v,
            "vcrash_v": cal.vcrash_bram_v,
            "rate_at_vcrash_per_mbit": float(rates[-1]),
            "power_at_vmin_w": float(powers[0]),
            "power_at_vcrash_w": float(powers[-1]),
        },
        arrays={
            "voltages_v": voltages,
            "median_rates_per_mbit": rates,
            "bram_power_w": powers,
            "rate_std_per_mbit": stds,
        },
    )


def _run_fvm(experiment: UndervoltingExperiment, unit: WorkUnit) -> UnitResult:
    """FVM extraction: the (voltage x BRAM) count matrix plus its statistics."""
    fvm = experiment.extract_fvm(pattern=unit.pattern, temperature_c=unit.temperature_c)
    return UnitResult(
        unit=unit,
        summary={
            "n_brams": fvm.n_brams,
            "bram_bits": fvm.bram_bits,
            **fvm.statistics(),
        },
        arrays={
            "voltages_v": np.array(fvm.voltages_v),
            "counts": fvm.counts_matrix(),
        },
    )


def _execute_shard(
    units: Tuple[WorkUnit, ...], name: str, root: str
) -> List[str]:
    """Run one die's units back to back (the worker-side entry point).

    Each unit is persisted through the store *as soon as it finishes* —
    unit files are distinct and the JSON commit marker is renamed into
    place atomically, so concurrent workers never contend — which bounds
    what an interruption can lose to the single in-flight unit per worker.
    """
    store = CampaignStore(name, root)
    executed: List[str] = []
    for unit in units:
        result = execute_unit(unit)
        store.save(result)
        executed.append(result.unit_id)
    return executed


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignRunReport:
    """What one ``run_campaign`` invocation actually did."""

    name: str
    spec_hash: str
    n_units: int
    executed: Tuple[str, ...]
    skipped: Tuple[str, ...]
    n_workers: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``repro-undervolt campaign run --json``."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "n_units": self.n_units,
            "n_executed": len(self.executed),
            "n_skipped": len(self.skipped),
            "n_workers": self.n_workers,
            "executed_unit_ids": list(self.executed),
        }


def _shards(units: Sequence[WorkUnit]) -> List[Tuple[WorkUnit, ...]]:
    """Group units by die, preserving expansion order within and across shards."""
    grouped: "OrderedDict[Tuple[str, str], List[WorkUnit]]" = OrderedDict()
    for unit in units:
        grouped.setdefault(unit.chip_key, []).append(unit)
    return [tuple(batch) for batch in grouped.values()]


def _process_context() -> Optional[multiprocessing.context.BaseContext]:
    """Fork context where available (inherits ``sys.path``); else default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_campaign(
    spec: CampaignSpec,
    root: "str | os.PathLike" = DEFAULT_ROOT,
    max_workers: Optional[int] = None,
    use_processes: bool = True,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> CampaignRunReport:
    """Run (or resume) a campaign, persisting every unit as it completes.

    Parameters
    ----------
    spec:
        The declarative campaign; its name selects the store directory.
    root:
        Directory the result store lives under (default ``campaigns/``).
    max_workers:
        Worker-process cap; defaults to ``min(n_shards, cpu_count)``.
        ``1`` (or ``use_processes=False``) runs serially in this process.
    progress:
        Optional callback ``(unit_id, n_done, n_total)`` fired as units
        complete — per unit when running serially, per finished shard when
        running process-parallel (workers persist their own units; the
        parent only learns of them when a shard's future resolves).  The
        CLI uses it for live status lines.
    """
    store = CampaignStore.open(spec, root)
    all_units = spec.expand()
    skipped = tuple(u.unit_id for u in all_units if store.is_complete(u))
    skipped_ids = set(skipped)
    pending = [u for u in all_units if u.unit_id not in skipped_ids]
    shards = _shards(pending)

    if max_workers is None:
        max_workers = min(len(shards), os.cpu_count() or 1) or 1
    if max_workers < 1:
        raise CampaignError("max_workers must be at least 1")
    serial = not use_processes or max_workers == 1 or len(shards) <= 1

    executed: List[str] = []

    def _record(unit_ids: Sequence[str]) -> None:
        for unit_id in unit_ids:
            executed.append(unit_id)
            if progress is not None:
                progress(unit_id, len(executed), len(pending))

    if serial:
        n_workers = 1
        for shard in shards:
            # Persist-and-report unit by unit, like the workers do.
            for unit in shard:
                result = execute_unit(unit)
                store.save(result)
                _record([result.unit_id])
    else:
        n_workers = min(max_workers, len(shards))
        context = _process_context()
        pool_kwargs: Dict[str, Any] = {"max_workers": n_workers}
        if context is not None:
            pool_kwargs["mp_context"] = context
        with ProcessPoolExecutor(**pool_kwargs) as pool:
            futures = {
                pool.submit(_execute_shard, shard, spec.name, str(root))
                for shard in shards
            }
            while futures:
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    _record(future.result())

    return CampaignRunReport(
        name=spec.name,
        spec_hash=spec.spec_hash,
        n_units=len(all_units),
        executed=tuple(executed),
        skipped=skipped,
        n_workers=n_workers,
    )
