"""Synthetic campaign results for store benchmarks and scale tests.

Executing 100k real work units through the fault-field stack would take
hours; exercising the *store* at that scale only needs schema-correct
results.  This module fabricates guardband :class:`UnitResult` s — same
summary shape (nested per-rail scalars + search accounting) and same array
payload names as :func:`repro.campaign.runner._run_guardband` — from a
seeded RNG, deterministically per unit, so store benchmarks
(``benchmarks/bench_store_v2.py``) and the 10k-die streaming-report test
measure layout cost and nothing else.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.fpga.platform import fleet_serials

from .spec import CampaignSpec, ChipGroup, WorkUnit
from .store import UnitResult

#: Platform every synthetic fleet simulates (the smallest studied board,
#: so WorkUnit validation stays cheap).
_PLATFORM = "ZC702"


def synthetic_fleet_spec(n_chips: int, name: str = "synthetic-fleet") -> CampaignSpec:
    """A guardband campaign spec over ``n_chips`` simulated dies.

    One unit per die (single temperature, single pattern), which makes
    ``n_chips`` also the unit count — the natural axis for store scaling.
    """
    return CampaignSpec(
        name=name,
        groups=(
            ChipGroup(
                platform=_PLATFORM,
                serials=fleet_serials(_PLATFORM, n_chips),
            ),
        ),
        sweep="guardband",
        runs_per_step=2,
    )


def synthetic_guardband_result(unit: WorkUnit, index: int) -> UnitResult:
    """One schema-correct fake guardband result, deterministic per unit."""
    rng = np.random.default_rng(index + 7)
    vnom = 1.0
    vmin = round(0.60 + 0.02 * float(rng.random()), 4)
    vcrash = round(vmin - 0.05 - 0.01 * float(rng.random()), 4)
    rails = {}
    for rail, scale in (("VCCBRAM", 1.0), ("VCCINT", 0.8)):
        rails[rail] = {
            "vnom_v": vnom,
            "vmin_v": vmin * scale,
            "vcrash_v": vcrash * scale,
            "guardband_fraction": (vnom - vmin * scale) / vnom,
            "power_reduction_factor_at_vmin": 1.0 + 0.5 * float(rng.random()),
        }
    n_evaluations = int(rng.integers(8, 20))
    summary = {
        "rails": rails,
        "search": {
            "mode": "adaptive",
            "n_evaluations": n_evaluations,
            "n_cache_hits": int(rng.integers(0, 5)),
            "n_exhaustive_equivalent": n_evaluations * 5,
            "evaluations_saved": n_evaluations * 4,
        },
    }
    voltages = np.array([vmin, (vmin + vcrash) / 2.0, vcrash])
    arrays = {
        "vccbram_voltages_v": voltages,
        "vccbram_median_fault_counts": np.array([0.0, 3.0, 50.0]),
        "vccbram_power_w": np.array([2.0, 1.8, 1.6]),
    }
    return UnitResult(unit=unit, summary=summary, arrays=arrays)


def synthetic_result_batches(
    spec: CampaignSpec, batch_rows: int = 20_000
) -> Iterator[List[UnitResult]]:
    """The spec's expansion as batches of fake results (for ``save_many``)."""
    batch: List[UnitResult] = []
    for index, unit in enumerate(spec.expand()):
        batch.append(synthetic_guardband_result(unit, index))
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch
