"""Segmented columnar campaign store (v2) and the version dispatch.

The v1 store (:mod:`repro.campaign.store`) keeps one ``.npz``/``.json`` pair
per work unit — fine for the paper's 16 chips, pathological for the
million-die fleets the roadmap aims at: ``campaign report`` re-opens and
re-parses every unit file.  The v2 layout consolidates many units per
*segment*, stored column-wise so reports stream memory-mapped arrays instead
of materializing per-die objects::

    manifest.json                     # spec + spec_hash + "store_version": 2
    index.json                        # unit_id -> [segment, row] lookup cache
    segments/<segment>.json           # segment commit marker (written last)
    segments/<segment>/<column>.npy   # one scalar column per file
    segments/<segment>/<name>__values.npy   # ragged array block (flattened)
    segments/<segment>/<name>__offsets.npy  # int64 row offsets (n_rows + 1)
    segments/<segment>/<name>__dim0.npy     # per-row shape of 2-D blocks
    segments/<segment>/<name>__dim1.npy
    segments/<segment>/summaries.json # full-fidelity per-row unit documents
    cache/<die>.json                  # per-die eval cache (identical to v1)

Commit semantics mirror v1 exactly: a segment's data directory is written
first, its JSON marker is renamed into place last, and only marker-backed
segments exist as far as readers are concerned — a crash mid-save leaves an
ignored data directory.  Every ``save()`` appends a fresh segment (append-only;
re-saving a unit never rewrites a committed segment) carrying a monotonically
increasing ``sequence``; when one unit appears in several segments the highest
sequence wins.  :meth:`CampaignStoreV2.compact` folds all live rows into
consolidated ``compact-*`` segments and deletes the superseded ones — explicit
and foreground, never in the background.

Scalar columns are the identity fields, the per-sweep report metrics
(:data:`repro.campaign.report.SWEEP_METRIC_PATHS`, extracted once at save
time) and the adaptive-search counters, so ``campaign status|report`` stream
percentiles, FVM-similarity groups and evaluation totals from memory-mapped
columns alone.  ``summaries.json`` preserves the verbatim unit summaries off
the streaming path, keeping :meth:`load` lossless — which is also what makes
v1 -> v2 migration (:func:`migrate_store`) verifiable by digest.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass
from itertools import groupby
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.fleet import (
    PairSimilarity,
    evaluation_totals_from_counts,
    fvm_similarity,
    population_summary,
)
from repro.core.fvm import FaultVariationMap
from repro.fpga.floorplan import Floorplan
from repro.fpga.platform import get_platform

from .report import SWEEP_METRIC_PATHS, CampaignReport
from .spec import CampaignError, CampaignSpec, WorkUnit, _canonical_json
from .store import (
    DEFAULT_ROOT,
    CampaignStore,
    UnitResult,
    _atomic_write_json,
    manifest_store_version,
)

#: Identity columns every segment carries (row order = save order).
_IDENTITY_COLUMNS = (
    "unit_id", "platform", "serial", "pattern",
    "temperature_c", "runs_per_step", "search",
)

#: Adaptive-search accounting columns (stream the fleet evaluation totals).
_SEARCH_COUNTERS = ("n_evaluations", "n_cache_hits", "n_exhaustive_equivalent")

#: Extra integer columns per sweep kind (FVM reconstruction parameters).
_EXTRA_INT_COLUMNS: Dict[str, Tuple[str, ...]] = {"fvm": ("n_brams", "bram_bits")}

#: Array payloads may be 1-D or 2-D; anything else has no block encoding.
_SUPPORTED_NDIM = (1, 2)


def _scalar_columns(sweep: str) -> Tuple[str, ...]:
    """Every scalar column a segment of this sweep kind stores."""
    return (
        _IDENTITY_COLUMNS
        + tuple(SWEEP_METRIC_PATHS[sweep])
        + ("search_present",)
        + tuple(f"search_{counter}" for counter in _SEARCH_COUNTERS)
        + _EXTRA_INT_COLUMNS.get(sweep, ())
    )


def _metric_value(summary: Mapping[str, Any], path: Tuple[str, ...]) -> float:
    """One metric extracted from a summary; NaN when the path is absent.

    The v1 report path raises on a summary missing its sweep's metrics; the
    columnar store is written once and read many times, so it degrades the
    broken row to NaN instead of refusing to persist the whole batch.
    """
    node: Any = summary
    for key in path:
        if not isinstance(node, Mapping) or key not in node:
            return float("nan")
        node = node[key]
    try:
        return float(node)
    except (TypeError, ValueError):
        return float("nan")


def _int_or_zero(value: Any) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return 0


def _array_signature(result: UnitResult) -> Tuple[Tuple[str, str, int], ...]:
    """The (name, dtype, ndim) shape of a result's array payload.

    Rows sharing a signature can live in one segment (their blocks
    concatenate without dtype promotion); :meth:`CampaignStoreV2.save_many`
    partitions each batch into runs of equal signature.
    """
    signature = []
    for name in sorted(result.arrays):
        array = np.asarray(result.arrays[name])
        if array.ndim not in _SUPPORTED_NDIM:
            raise CampaignError(
                f"array {name!r} of unit {result.unit_id} is "
                f"{array.ndim}-dimensional; the columnar store holds only "
                "1-D and 2-D payloads"
            )
        signature.append((name, array.dtype.str, array.ndim))
    return tuple(signature)


def _load_npy(path: Path, directory: Path) -> np.ndarray:
    """Load one column/block file, memory-mapped, with one-line errors."""
    try:
        try:
            return np.load(path, mmap_mode="r", allow_pickle=False)
        except ValueError:
            # Zero-length payloads cannot be memory-mapped; a plain load
            # either succeeds (empty array) or confirms the corruption.
            return np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"campaign store segment file {path} is corrupt, truncated or "
            f"missing ({exc}); restore {directory} from a backup or re-run "
            "the campaign"
        ) from exc


class _Segment:
    """One committed segment: its marker metadata plus lazy column access."""

    _MARKER_KEYS = ("store_version", "name", "sequence", "sweep", "n_rows",
                    "columns", "array_blocks")

    def __init__(self, store: "CampaignStoreV2", marker_path: Path) -> None:
        self._store = store
        self.marker_path = marker_path
        try:
            marker = json.loads(marker_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"campaign store segment marker {marker_path} is corrupt "
                f"(not valid JSON: {exc}); restore it or re-run the campaign"
            ) from exc
        if not isinstance(marker, dict) or any(
            key not in marker for key in self._MARKER_KEYS
        ):
            raise CampaignError(
                f"campaign store segment marker {marker_path} is not a "
                "segment document; restore it or re-run the campaign"
            )
        self.name: str = str(marker["name"])
        self.sequence: int = int(marker["sequence"])
        self.sweep: str = str(marker["sweep"])
        self.n_rows: int = int(marker["n_rows"])
        self.columns: Tuple[str, ...] = tuple(marker["columns"])
        self.array_blocks: Dict[str, int] = {
            str(name): int(ndim) for name, ndim in dict(marker["array_blocks"]).items()
        }
        self.data_dir = store.segments_dir / self.name
        self._column_cache: Dict[str, np.ndarray] = {}
        self._rows_cache: Optional[List[Dict[str, Any]]] = None

    # -- scalar columns -------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One scalar column (memory-mapped), row-count checked."""
        cached = self._column_cache.get(name)
        if cached is not None:
            return cached
        if name not in self.columns:
            raise CampaignError(
                f"segment {self.name} of {self._store.directory} has no "
                f"column {name!r}; the store was written by an incompatible "
                "version or is corrupt"
            )
        array = _load_npy(self.data_dir / f"{name}.npy", self._store.directory)
        if len(array) != self.n_rows:
            raise CampaignError(
                f"segment {self.name} of {self._store.directory} declares "
                f"{self.n_rows} rows but column {name!r} holds {len(array)}; "
                "the store is corrupt"
            )
        self._column_cache[name] = array
        return array

    # -- ragged array blocks --------------------------------------------
    def _block(self, name: str) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        values = _load_npy(self.data_dir / f"{name}__values.npy", self._store.directory)
        offsets = _load_npy(self.data_dir / f"{name}__offsets.npy", self._store.directory)
        if len(offsets) != self.n_rows + 1 or (self.n_rows >= 0 and int(offsets[-1]) != len(values)):
            raise CampaignError(
                f"segment {self.name} of {self._store.directory} has an "
                f"inconsistent array block {name!r} (offsets do not match "
                "its values); the store is corrupt"
            )
        dim0 = dim1 = None
        if self.array_blocks[name] == 2:
            dim0 = _load_npy(self.data_dir / f"{name}__dim0.npy", self._store.directory)
            dim1 = _load_npy(self.data_dir / f"{name}__dim1.npy", self._store.directory)
            if len(dim0) != self.n_rows or len(dim1) != self.n_rows:
                raise CampaignError(
                    f"segment {self.name} of {self._store.directory} has an "
                    f"inconsistent 2-D block {name!r}; the store is corrupt"
                )
        return values, offsets, dim0, dim1

    def unit_array(self, name: str, row: int) -> np.ndarray:
        """One row's array payload, copied out with its original shape."""
        values, offsets, dim0, dim1 = self._block(name)
        flat = np.array(values[int(offsets[row]):int(offsets[row + 1])])
        if dim0 is None:
            return flat
        return flat.reshape(int(dim0[row]), int(dim1[row]))

    # -- full-fidelity rows ---------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """The verbatim per-row unit documents (``summaries.json``)."""
        if self._rows_cache is not None:
            return self._rows_cache
        path = self.data_dir / "summaries.json"
        try:
            rows = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"segment summaries {path} are corrupt or missing ({exc}); "
                "restore the store from a backup or re-run the campaign"
            ) from exc
        if not isinstance(rows, list) or len(rows) != self.n_rows:
            raise CampaignError(
                f"segment summaries {path} do not match the segment's "
                f"{self.n_rows} rows; the store is corrupt"
            )
        self._rows_cache = rows
        return rows


class CampaignStoreV2(CampaignStore):
    """Append-only segmented columnar persistence for one campaign.

    API-compatible with the v1 :class:`CampaignStore` — ``open``, ``save``,
    ``load``, ``results``, ``status``, ``pending_units`` and the eval-cache
    methods behave identically — plus :meth:`save_many` (one consolidated
    segment per batch) and :meth:`compact` (explicit consolidation).
    """

    store_version = 2

    def __init__(self, name: str, root: "str | Path" = DEFAULT_ROOT) -> None:
        super().__init__(name, root)
        self.segments_dir = self.directory / "segments"
        self.index_path = self.directory / "index.json"
        self._segment_cache: Dict[str, _Segment] = {}
        self._live_cache: Optional[
            Tuple[Tuple[Tuple[str, int], ...], Dict[str, Tuple[_Segment, int]]]
        ] = None

    def _ensure_layout(self) -> None:
        self.segments_dir.mkdir(parents=True, exist_ok=True)

    def _store_block(self) -> Dict[str, Any]:
        return {"version": 2, "n_segments": len(self._segments())}

    # ------------------------------------------------------------------
    # Segment discovery
    # ------------------------------------------------------------------
    def _segments(self) -> List[_Segment]:
        """Every committed segment, in precedence order (sequence, name)."""
        if self.units_dir.exists() and any(self.units_dir.glob("*.json")):
            raise CampaignError(
                f"campaign directory {self.directory} mixes store layouts "
                "(v2 manifest with v1 units/ markers); finish the migration "
                "or use a fresh campaign name"
            )
        if not self.segments_dir.exists():
            return []
        names = {path.stem for path in self.segments_dir.glob("*.json")}
        for stale in set(self._segment_cache) - names:
            del self._segment_cache[stale]
        for name in names - set(self._segment_cache):
            self._segment_cache[name] = _Segment(
                self, self.segments_dir / f"{name}.json"
            )
        return sorted(
            self._segment_cache.values(), key=lambda s: (s.sequence, s.name)
        )

    def _next_sequence(self) -> int:
        segments = self._segments()
        return (max(s.sequence for s in segments) + 1) if segments else 0

    # ------------------------------------------------------------------
    # The live map (unit_id -> segment/row) and its index.json cache
    # ------------------------------------------------------------------
    def _live_map(self) -> Dict[str, Tuple[_Segment, int]]:
        """Which (segment, row) currently owns each unit id.

        Later sequences supersede earlier ones, which is what makes both
        re-saves and crash-interrupted compactions (old segments not yet
        deleted) read consistently.  ``index.json`` is a pure cache: used
        when it matches the current segment set, silently rebuilt from the
        ``unit_id`` columns when stale or unreadable.
        """
        segments = self._segments()
        key = tuple((s.name, s.sequence) for s in segments)
        if self._live_cache is not None and self._live_cache[0] == key:
            return self._live_cache[1]
        live = self._live_from_index(segments)
        if live is None:
            live = {}
            for segment in segments:  # ascending precedence: later wins
                for row, unit_id in enumerate(segment.column("unit_id")):
                    live[str(unit_id)] = (segment, row)
        self._live_cache = (key, live)
        return live

    def _live_from_index(
        self, segments: List[_Segment]
    ) -> Optional[Dict[str, Tuple[_Segment, int]]]:
        if not self.index_path.exists():
            return None
        try:
            document = json.loads(self.index_path.read_text())
            recorded = sorted(
                (str(entry["name"]), int(entry["sequence"]))
                for entry in document["segments"]
            )
            if recorded != sorted((s.name, s.sequence) for s in segments):
                return None  # stale cache: segments changed since it was built
            by_name = {s.name: s for s in segments}
            live: Dict[str, Tuple[_Segment, int]] = {}
            for unit_id, (name, row) in document["units"].items():
                segment = by_name[str(name)]
                row = int(row)
                if not 0 <= row < segment.n_rows:
                    return None
                live[str(unit_id)] = (segment, row)
            return live
        except (KeyError, TypeError, ValueError, json.JSONDecodeError, OSError):
            return None  # an unreadable cache is rebuilt, never an error

    def write_index(self) -> None:
        """(Re)write ``index.json`` from the current live map."""
        live = self._live_map()
        document = {
            "store_version": 2,
            "segments": [
                {"name": s.name, "sequence": s.sequence,
                 "n_rows": s.n_rows, "sweep": s.sweep}
                for s in self._segments()
            ],
            "units": {
                unit_id: [segment.name, row]
                for unit_id, (segment, row) in sorted(live.items())
            },
        }
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
        tmp.replace(self.index_path)

    # ------------------------------------------------------------------
    # Unit persistence
    # ------------------------------------------------------------------
    def is_complete(self, unit: "WorkUnit | str") -> bool:
        unit_id = unit if isinstance(unit, str) else unit.unit_id
        return unit_id in self._live_map()

    def completed_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._live_map()))

    def save(self, result: UnitResult) -> None:
        """Append one unit as its own small segment (compact() consolidates)."""
        self._save_batch([result], write_index=False)

    def save_many(self, results: Iterable[UnitResult]) -> None:
        """Append a batch of units as consolidated segments.

        The batch is partitioned into runs of equal array signature (block
        dtypes must not promote when concatenated); each partition becomes
        one segment.  Also refreshes ``index.json``.
        """
        batch = list(results)
        if not batch:
            return
        self._save_batch(batch, write_index=True)

    def _save_batch(self, batch: List[UnitResult], write_index: bool) -> None:
        sweeps = {result.unit.sweep for result in batch}
        if len(sweeps) > 1:
            raise CampaignError(
                f"one store batch cannot mix sweep kinds ({sorted(sweeps)})"
            )
        self._ensure_layout()
        sequence = self._next_sequence()
        for _signature, group in groupby(batch, key=_array_signature):
            rows = list(group)
            name = f"seg-{sequence:08d}-{rows[0].unit_id}"
            self._write_segment(name, rows, sequence)
            sequence += 1
        self._live_cache = None
        if write_index:
            self.write_index()

    def _write_segment(
        self, name: str, results: List[UnitResult], sequence: int
    ) -> None:
        """Write one segment: data files first, JSON marker last (atomic)."""
        sweep = results[0].unit.sweep
        data_dir = self.segments_dir / name
        if data_dir.exists():
            shutil.rmtree(data_dir)
        data_dir.mkdir(parents=True)

        columns: Dict[str, np.ndarray] = {
            "unit_id": np.array([r.unit_id for r in results]),
            "platform": np.array([r.unit.platform for r in results]),
            "serial": np.array([r.unit.serial for r in results]),
            "pattern": np.array([r.unit.pattern for r in results]),
            "temperature_c": np.array(
                [float(r.unit.temperature_c) for r in results], dtype=np.float64
            ),
            "runs_per_step": np.array(
                [int(r.unit.runs_per_step) for r in results], dtype=np.int64
            ),
            "search": np.array([r.unit.search for r in results]),
        }
        for metric, path in SWEEP_METRIC_PATHS[sweep].items():
            columns[metric] = np.array(
                [_metric_value(r.summary, path) for r in results], dtype=np.float64
            )
        search_docs = []
        for result in results:
            doc = result.summary.get("search", {})
            search_docs.append(doc if isinstance(doc, Mapping) else {})
        columns["search_present"] = np.array(
            [bool(doc) for doc in search_docs], dtype=bool
        )
        for counter in _SEARCH_COUNTERS:
            columns[f"search_{counter}"] = np.array(
                [_int_or_zero(doc.get(counter, 0)) for doc in search_docs],
                dtype=np.int64,
            )
        if sweep in _EXTRA_INT_COLUMNS:
            defaults = []
            for result in results:
                platform = get_platform(result.unit.platform)
                defaults.append(
                    {
                        "n_brams": platform.n_brams,
                        "bram_bits": platform.bram_rows * platform.bram_cols,
                    }
                )
            for extra in _EXTRA_INT_COLUMNS[sweep]:
                columns[extra] = np.array(
                    [
                        _int_or_zero(r.summary.get(extra, default[extra]))
                        for r, default in zip(results, defaults)
                    ],
                    dtype=np.int64,
                )

        for column, array in columns.items():
            np.save(data_dir / f"{column}.npy", array, allow_pickle=False)

        array_blocks: Dict[str, int] = {}
        for block_name, _dtype, ndim in _array_signature(results[0]):
            arrays = [np.asarray(r.arrays[block_name]) for r in results]
            array_blocks[block_name] = ndim
            sizes = np.array([a.size for a in arrays], dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            values = np.concatenate([a.ravel() for a in arrays])
            np.save(data_dir / f"{block_name}__values.npy", values, allow_pickle=False)
            np.save(data_dir / f"{block_name}__offsets.npy", offsets, allow_pickle=False)
            if ndim == 2:
                np.save(
                    data_dir / f"{block_name}__dim0.npy",
                    np.array([a.shape[0] for a in arrays], dtype=np.int64),
                    allow_pickle=False,
                )
                np.save(
                    data_dir / f"{block_name}__dim1.npy",
                    np.array([a.shape[1] for a in arrays], dtype=np.int64),
                    allow_pickle=False,
                )

        summaries = [
            {"unit_id": r.unit_id, "unit": r.unit.to_dict(), "summary": r.summary}
            for r in results
        ]
        (data_dir / "summaries.json").write_text(
            json.dumps(summaries, sort_keys=True) + "\n"
        )

        marker = {
            "store_version": 2,
            "name": name,
            "sequence": sequence,
            "sweep": sweep,
            "n_rows": len(results),
            "columns": sorted(columns),
            "array_blocks": array_blocks,
        }
        _atomic_write_json(self.segments_dir / f"{name}.json", marker)
        self._segment_cache.pop(name, None)

    def load(self, unit: "WorkUnit | str", with_arrays: bool = True) -> UnitResult:
        """Load one completed unit back, bit-identical to what was saved."""
        unit_id = unit if isinstance(unit, str) else unit.unit_id
        live = self._live_map()
        if unit_id not in live:
            raise CampaignError(
                f"unit {unit_id} has not completed in {self.directory}"
            )
        segment, row = live[unit_id]
        document = segment.rows()[row]
        try:
            if document.get("unit_id") != unit_id:
                raise CampaignError(
                    f"segment {segment.name} row {row} belongs to unit "
                    f"{document.get('unit_id')!r}, not {unit_id}; the store "
                    "index is corrupt"
                )
            descriptor = WorkUnit.from_dict(document["unit"])
        except CampaignError:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise CampaignError(
                f"segment {segment.name} of {self.directory} holds a corrupt "
                f"unit document ({exc}); re-run the campaign"
            ) from exc
        arrays: Dict[str, np.ndarray] = {}
        if with_arrays:
            arrays = {
                block: segment.unit_array(block, row)
                for block in sorted(segment.array_blocks)
            }
        return UnitResult(
            unit=descriptor, summary=document.get("summary", {}), arrays=arrays
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Fold all live rows into consolidated segments, dropping the rest.

        Explicit and foreground (no background threads): loads every live
        row, writes ``compact-*`` segments at a sequence above every existing
        one, refreshes ``index.json``, then deletes the superseded segments.
        A crash part-way is safe — consolidated segments outrank the old ones,
        and leftover old segments are removed by the next compaction.
        """
        segments = self._segments()
        live = self._live_map()
        before = len(segments)
        if before <= 1:
            if segments:
                self.write_index()
            return {
                "n_segments_before": before,
                "n_segments_after": before,
                "n_rows": len(live),
            }
        results = [self.load(unit_id) for unit_id in sorted(live)]
        old_names = [s.name for s in segments]
        sequence = self._next_sequence()
        n_after = 0
        for _signature, group in groupby(results, key=_array_signature):
            self._write_segment(f"compact-{sequence:08d}", list(group), sequence)
            sequence += 1
            n_after += 1
        for name in old_names:
            (self.segments_dir / f"{name}.json").unlink(missing_ok=True)
            shutil.rmtree(self.segments_dir / name, ignore_errors=True)
            self._segment_cache.pop(name, None)
        self._live_cache = None
        self.write_index()
        return {
            "n_segments_before": before,
            "n_segments_after": n_after,
            "n_rows": len(results),
        }


# ----------------------------------------------------------------------
# Version dispatch
# ----------------------------------------------------------------------
def _check_layout(store: CampaignStore) -> CampaignStore:
    """Reject directories whose content mixes the v1 and v2 layouts."""
    units = store.directory / "units"
    segments = store.directory / "segments"
    has_units = units.exists() and any(units.glob("*.json"))
    has_segments = segments.exists() and any(segments.glob("*.json"))
    if (store.store_version == 1 and has_segments) or (
        store.store_version == 2 and has_units
    ):
        raise CampaignError(
            f"campaign directory {store.directory} mixes store layouts "
            f"(a v{store.store_version} manifest with "
            f"{'v2 segments/' if store.store_version == 1 else 'v1 units/'} "
            "content); finish the migration or use a fresh campaign name"
        )
    return store


def open_store(
    name: str, root: "str | Path" = DEFAULT_ROOT, must_exist: bool = True
) -> CampaignStore:
    """Open an existing store, dispatching on its manifest's store version.

    The single entry point the runner, the CLI, the replay/runtime layers
    and the migration tool share: v1 manifests (or pre-version manifests
    with no ``store_version`` field) yield a :class:`CampaignStore`, v2
    manifests a :class:`CampaignStoreV2`.  ``must_exist=False`` returns a
    v1 view for a store with no manifest yet (the "not started" state
    ``campaign status --spec`` accepts).
    """
    probe = CampaignStore(name, root)
    if not probe.manifest_path.exists():
        if must_exist:
            raise CampaignError(f"no campaign manifest at {probe.manifest_path}")
        return probe
    version = manifest_store_version(probe.manifest_path)
    if version == 2:
        return _check_layout(CampaignStoreV2(name, root))
    return _check_layout(probe)


def open_store_for_spec(
    spec: CampaignSpec,
    root: "str | Path" = DEFAULT_ROOT,
    store_version: Optional[int] = None,
) -> CampaignStore:
    """Create-or-open the store a campaign run should write into.

    An existing manifest pins the version (an explicit conflicting
    ``store_version`` raises rather than silently forking the layout); a
    fresh campaign is created at ``store_version`` (default v1).
    """
    if store_version is not None and int(store_version) not in (1, 2):
        raise CampaignError(
            f"unknown store version {store_version!r}; expected 1 or 2"
        )
    manifest_path = Path(root) / spec.name / "manifest.json"
    if manifest_path.exists():
        existing = manifest_store_version(manifest_path)
        if store_version is not None and int(store_version) != existing:
            raise CampaignError(
                f"campaign {spec.name!r} already uses store version "
                f"{existing}; re-running it as v{int(store_version)} is not "
                "possible — use 'campaign migrate' or a fresh campaign name"
            )
        cls = CampaignStoreV2 if existing == 2 else CampaignStore
    else:
        cls = CampaignStoreV2 if int(store_version or 1) == 2 else CampaignStore
    return _check_layout(cls.open(spec, root))


# ----------------------------------------------------------------------
# Streaming fleet report (the v2 read path)
# ----------------------------------------------------------------------
def _index_into(expected: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Position of each ``actual`` value in ``expected`` (-1 when absent).

    The vectorized heart of expansion-order sorting: a searchsorted against
    the sorted expected values, validated by equality, keeps the report's
    row-ordering cost at numpy speed for 100k-die fleets.
    """
    order = np.argsort(expected, kind="stable")
    ranked = expected[order]
    position = np.searchsorted(ranked, actual)
    position = np.minimum(position, len(ranked) - 1)
    found = ranked[position] == actual
    index = order[position]
    index[~found] = -1
    return index


class _StreamedUnitRows(Sequence):
    """The report's flat per-unit rows, built lazily from ordered columns.

    ``campaign report``'s table path never touches the rows at all — not
    even the ordering of the string identity columns happens until a row is
    asked for.  The ``--json`` path materializes rows once, via ``tolist()``
    bulk conversion, when the document is serialized.  Either way no
    per-die object exists before it is needed.
    """

    _IDENTITY = ("unit_id", "platform", "serial", "temperature_c", "pattern")

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        order: np.ndarray,
        preordered: Dict[str, np.ndarray],
        metric_names: List[str],
    ) -> None:
        self._columns = columns
        self._order = order
        self._ordered = dict(preordered)
        self._names = list(self._IDENTITY) + list(metric_names)
        self._n = len(order)

    def _column(self, name: str) -> np.ndarray:
        array = self._ordered.get(name)
        if array is None:
            array = self._columns[name][self._order]
            self._ordered[name] = array
        return array

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        if not -self._n <= index < self._n:
            raise IndexError(index)
        return {name: self._column(name)[index].item() for name in self._names}

    def __iter__(self):
        arrays = [self._column(name).tolist() for name in self._names]
        for values in zip(*arrays):
            yield dict(zip(self._names, values))


def build_report_streaming(
    store: CampaignStoreV2, spec: Optional[CampaignSpec] = None
) -> CampaignReport:
    """Aggregate a v2 store segment by segment, without per-die objects.

    Reads only the memory-mapped scalar columns (plus, for FVM campaigns,
    the count-matrix blocks), orders rows into the spec's expansion order by
    a stable argsort over (chip, temperature, pattern) indices — which is
    what makes every aggregate bit-identical to the v1 path — and feeds the
    ordered column arrays straight into :mod:`repro.analysis.fleet`.
    No :class:`WorkUnit`, :class:`UnitResult` or per-unit summary document
    is ever materialized.
    """
    spec = store._validated_spec(spec)
    metric_names = list(SWEEP_METRIC_PATHS[spec.sweep])
    scalar_names = list(_scalar_columns(spec.sweep))

    segments = [segment for segment in store._segments() if segment.n_rows]
    for segment in segments:
        if segment.sweep != spec.sweep:
            raise CampaignError(
                f"segment {segment.name} of {store.directory} holds sweep "
                f"kind {segment.sweep!r} but the campaign is {spec.sweep!r}; "
                "the store is mixed or corrupt"
            )

    # Liveness without the per-unit map: segments are already in precedence
    # order, so the LAST occurrence of a unit_id across the concatenated id
    # columns is the live row.  np.unique over the reversed ids finds those
    # occurrences in one vectorized pass — no 100k-entry python dict.
    id_chunks = [np.asarray(segment.column("unit_id")) for segment in segments]
    n_total = int(sum(len(ids) for ids in id_chunks))
    if not n_total:
        raise CampaignError(
            f"campaign {spec.name!r} has no completed units to report on; "
            "run it first with 'campaign run'"
        )
    all_ids = np.concatenate(id_chunks)
    _, reversed_first = np.unique(all_ids[::-1], return_index=True)
    keep = np.zeros(n_total, dtype=bool)
    keep[n_total - 1 - reversed_first] = True

    chunks: List[Dict[str, Any]] = []
    fvm_rows: List[Tuple[_Segment, int]] = []
    start = 0
    for segment, ids in zip(segments, id_chunks):
        mask = keep[start : start + len(ids)]
        start += len(ids)
        if not mask.any():
            continue
        if mask.all():
            rows = np.arange(len(ids), dtype=np.int64)
            chunk = {
                name: np.asarray(segment.column(name)) for name in scalar_names
            }
        else:
            rows = np.flatnonzero(mask)
            chunk = {
                name: np.asarray(segment.column(name))[rows]
                for name in scalar_names
            }
        chunks.append(chunk)
        if spec.sweep == "fvm":
            fvm_rows.extend((segment, int(row)) for row in rows)

    columns = {
        name: np.concatenate([chunk[name] for chunk in chunks])
        for name in scalar_names
    }

    # Expansion-order keys: aggregation order must match the v1 path bit for
    # bit, and floating-point reductions are order-sensitive.  Chips map
    # through a python dict (faster than sorting 100k long strings);
    # temperatures and patterns — a handful of expected values — go through
    # the searchsorted index map.
    chip_lookup = {chip: index for index, chip in enumerate(spec.chips())}
    chip_idx = np.fromiter(
        (
            chip_lookup.get(pair, -1)
            for pair in zip(
                columns["platform"].tolist(), columns["serial"].tolist()
            )
        ),
        dtype=np.int64,
        count=len(columns["platform"]),
    )
    temperature_idx = _index_into(
        np.asarray(spec.temperatures_c, dtype=np.float64),
        np.asarray(columns["temperature_c"], dtype=np.float64),
    )
    pattern_idx = _index_into(
        np.array(spec.patterns), np.asarray(columns["pattern"])
    )
    foreign = (
        (chip_idx < 0)
        | (temperature_idx < 0)
        | (pattern_idx < 0)
        | (np.asarray(columns["runs_per_step"]) != spec.runs_per_step)
        | (np.asarray(columns["search"]) != spec.search)
    )
    if foreign.any():
        bad = int(np.flatnonzero(foreign)[0])
        raise CampaignError(
            f"unit {columns['unit_id'][bad]} in {store.directory} does not "
            f"belong to campaign {spec.name!r}; the store is mixed or corrupt"
        )
    keys = (
        chip_idx * len(spec.temperatures_c) + temperature_idx
    ) * len(spec.patterns) + pattern_idx
    order = np.argsort(keys, kind="stable")

    # Only the float aggregation inputs are ordered eagerly (mean is
    # order-sensitive in floating point, so expansion order is what makes
    # the aggregates bit-identical to v1).  String identity columns order
    # lazily inside _StreamedUnitRows, on first row access.
    metric_arrays = {name: columns[name][order] for name in metric_names}
    platform_column = columns["platform"][order]
    unit_rows = _StreamedUnitRows(
        columns,
        order,
        dict(metric_arrays, platform=platform_column),
        metric_names,
    )
    by_platform = {}
    for platform in np.unique(platform_column):
        mask = platform_column == platform
        by_platform[str(platform)] = population_summary(
            {name: values[mask] for name, values in metric_arrays.items()}
        )

    evaluations = evaluation_totals_from_counts(
        n_units=int(np.count_nonzero(columns["search_present"])),
        n_evaluations=int(columns["search_n_evaluations"].sum()),
        n_cache_hits=int(columns["search_n_cache_hits"].sum()),
        n_exhaustive_equivalent=int(
            columns["search_n_exhaustive_equivalent"].sum()
        ),
    )

    similarity: List[PairSimilarity] = []
    if spec.sweep == "fvm":
        similarity = _streamed_similarity(fvm_rows)

    return CampaignReport(
        spec=spec,
        results=[],
        fleet=population_summary(metric_arrays),
        by_platform=by_platform,
        similarity=similarity,
        evaluations=evaluations,
        units=unit_rows,
        store=store._store_block(),
    )


def _streamed_similarity(
    fvm_rows: Sequence[Tuple[_Segment, int]]
) -> List[PairSimilarity]:
    """The Fig. 7 pairwise comparison, rebuilt from segment blocks.

    Count matrices stream out of the segments' memory-mapped blocks; the
    grouping (platform, temperature, pattern) and pair ordering replicate
    the v1 report path exactly.
    """
    grouped: Dict[Tuple[str, float, str], Dict[str, FaultVariationMap]] = {}
    for segment, row in fvm_rows:
        platform = str(segment.column("platform")[row])
        serial = str(segment.column("serial")[row])
        key = (
            platform,
            float(segment.column("temperature_c")[row]),
            str(segment.column("pattern")[row]),
        )
        platform_spec = get_platform(platform)
        floorplan = Floorplan.regular(
            n_brams=platform_spec.n_brams,
            n_columns=platform_spec.floorplan_columns,
        )
        grouped.setdefault(key, {})[serial] = FaultVariationMap.from_matrix(
            platform=platform,
            floorplan=floorplan,
            voltages_v=[float(v) for v in segment.unit_array("voltages_v", row)],
            counts=segment.unit_array("counts", row),
            bram_bits=int(segment.column("bram_bits")[row]),
        )
    similarity: List[PairSimilarity] = []
    for (platform, _temperature, _pattern), maps in sorted(grouped.items()):
        similarity.extend(fvm_similarity(maps, platform))
    return similarity


# ----------------------------------------------------------------------
# v1 -> v2 migration
# ----------------------------------------------------------------------
def store_digest(store: CampaignStore, spec: Optional[CampaignSpec] = None) -> str:
    """Content digest of every completed unit, layout-independent.

    Hashes the canonical JSON of each completed unit's descriptor, summary
    and arrays (dtype, shape and values) in spec expansion order, so a v1
    store and its migrated v2 twin produce the same digest if and only if
    they hold bit-identical results.
    """
    spec = store._validated_spec(spec)
    digest = hashlib.sha256()
    for unit in spec.expand():
        if not store.is_complete(unit):
            continue
        result = store.load(unit)
        document = {
            "unit": result.unit.to_dict(),
            "summary": result.summary,
            "arrays": {
                name: [array.dtype.str, list(array.shape), array.ravel().tolist()]
                for name, array in sorted(result.arrays.items())
            },
        }
        digest.update(_canonical_json(document).encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class MigrationReport:
    """What one ``campaign migrate`` invocation did."""

    name: str
    root: str
    from_version: int
    to_version: int
    already_v2: bool
    n_units: int
    n_segments: int
    digest: Optional[str] = None
    backup: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``repro-undervolt campaign migrate --json``."""
        return {
            "name": self.name,
            "root": self.root,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "already_v2": self.already_v2,
            "n_units": self.n_units,
            "n_segments": self.n_segments,
            "digest": self.digest,
            "backup": self.backup,
        }


def migrate_store(
    name: str,
    root: "str | Path" = DEFAULT_ROOT,
    keep_v1: bool = False,
    batch_rows: int = 4096,
) -> MigrationReport:
    """Convert a v1 store to the v2 columnar layout, verified by digest.

    Idempotent: an already-v2 store is a no-op.  The v2 twin is built in a
    staging directory next to the store, verified against the source by
    :func:`store_digest`, and only then swapped into place — a digest
    mismatch (or any error before the swap) leaves the original untouched.
    Eval caches and side files (e.g. ``governor_bundle.json``) are carried
    over verbatim.  ``keep_v1`` preserves the original as
    ``<name>.v1-backup`` next to the migrated store.
    """
    root = Path(root)
    source = open_store(name, root)
    if source.store_version >= 2:
        v2 = source
        assert isinstance(v2, CampaignStoreV2)
        return MigrationReport(
            name=name,
            root=str(root),
            from_version=2,
            to_version=2,
            already_v2=True,
            n_units=len(v2.completed_ids()),
            n_segments=len(v2._segments()),
        )
    spec = source.load_manifest()
    staging_root = root / f".{name}.migrating"
    if staging_root.exists():
        shutil.rmtree(staging_root)
    try:
        target = CampaignStoreV2.open(spec, staging_root)
        batch: List[UnitResult] = []
        n_units = 0
        for unit in spec.expand():
            if not source.is_complete(unit):
                continue
            batch.append(source.load(unit))
            n_units += 1
            if len(batch) >= batch_rows:
                target.save_many(batch)
                batch = []
        if batch:
            target.save_many(batch)
        target.compact()
        for entry in source.directory.iterdir():
            if entry.name in ("units", "manifest.json"):
                continue
            destination = target.directory / entry.name
            if entry.is_dir():
                shutil.copytree(entry, destination, dirs_exist_ok=True)
            else:
                shutil.copy2(entry, destination)
        source_digest = store_digest(source, spec)
        target_digest = store_digest(target, spec)
        if source_digest != target_digest:
            raise CampaignError(
                f"migration of campaign {name!r} produced a different result "
                f"digest ({target_digest} != {source_digest}); the original "
                "v1 store is untouched"
            )
    except BaseException:
        shutil.rmtree(staging_root, ignore_errors=True)
        raise
    backup = root / f"{name}.v1-backup"
    if backup.exists():
        shutil.rmtree(backup)
    source.directory.replace(backup)
    target.directory.replace(source.directory)
    shutil.rmtree(staging_root, ignore_errors=True)
    if keep_v1:
        backup_path: Optional[str] = str(backup)
    else:
        shutil.rmtree(backup)
        backup_path = None
    migrated = CampaignStoreV2(name, root)
    return MigrationReport(
        name=name,
        root=str(root),
        from_version=1,
        to_version=2,
        already_v2=False,
        n_units=n_units,
        n_segments=len(migrated._segments()),
        digest=target_digest,
        backup=backup_path,
    )
