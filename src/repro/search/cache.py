"""Evaluation cache for adaptive characterization searches.

Every fault-field evaluation the harness performs is a pure function of the
operating point: which die (platform + serial), which rail, which voltage,
which board temperature, which stored data pattern and how many read-back
runs.  :class:`EvalCache` memoizes those evaluations under exactly that key
so that

* the Vmin and Vcrash searches of one guardband discovery share every probe
  (the Vcrash bracket starts from points the Vmin search already paid for);
* repeated sweeps on one die — different searches, different campaign units —
  never re-evaluate an operating point;
* a *resumed* campaign replays its completed probes from the store instead of
  the fault field (:meth:`repro.campaign.store.CampaignStore.save_eval_cache`
  persists the cache per die and the runner loads it back).

Keys quantize voltage to tenths of millivolts and temperature to
milli-degrees so that float round-tripping through JSON can never split one
physical operating point into two cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple


class SearchError(ValueError):
    """Raised for invalid search configurations, caches or certificates."""


#: Cache schema version; bumped when the entry layout changes so stale
#: persisted caches are ignored rather than misread.
CACHE_VERSION = 1


def _quantize_voltage(voltage_v: float) -> int:
    """Voltage in tenths of millivolts (the sweep grid is 10 mV)."""
    return int(round(float(voltage_v) * 10_000))


def _quantize_temperature(temperature_c: float) -> int:
    """Temperature in milli-degrees Celsius."""
    return int(round(float(temperature_c) * 1_000))


@dataclass(frozen=True)
class PointEvaluation:
    """One fault-field evaluation at one operating point.

    ``counts`` holds the chip-level fault count of every read-back run (empty
    when the design was not operational at the point); ``bram_power_w`` is
    recorded for VCCBRAM probes so sparse adaptive sweeps can still report
    the power curve at the points they touched.  FVM extraction stores its
    per-voltage per-BRAM count vector in ``per_bram_counts`` (with
    ``n_runs = 0``, the no-run-axis convention of the batch engine).
    """

    voltage_v: float
    temperature_c: float
    rail: str
    pattern: str
    n_runs: int
    counts: Tuple[int, ...]
    operational: bool
    bram_power_w: Optional[float] = None
    per_bram_counts: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if self.per_bram_counts is not None:
            object.__setattr__(
                self, "per_bram_counts", tuple(int(c) for c in self.per_bram_counts)
            )
        if any(c < 0 for c in self.counts):
            raise SearchError("fault counts cannot be negative")

    @property
    def median_fault_count(self) -> int:
        """Integer median fault count, the quantity the sweeps threshold on.

        Matches :class:`repro.harness.records.VoltageStepResult`: the median
        over the runs, passed through ``int`` exactly as the exhaustive
        guardband walk does when it builds its ``SweepObservation``.
        """
        if not self.counts:
            return 0
        ordered = sorted(self.counts)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return int(ordered[mid])
        return int((ordered[mid - 1] + ordered[mid]) / 2.0)

    @property
    def fault_free(self) -> bool:
        """Operational with a zero median fault count (the Vmin predicate)."""
        return self.operational and self.median_fault_count == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of the evaluation."""
        return {
            "voltage_v": self.voltage_v,
            "temperature_c": self.temperature_c,
            "rail": self.rail,
            "pattern": self.pattern,
            "n_runs": self.n_runs,
            "counts": list(self.counts),
            "operational": self.operational,
            "bram_power_w": self.bram_power_w,
            "per_bram_counts": (
                None if self.per_bram_counts is None else list(self.per_bram_counts)
            ),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "PointEvaluation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            voltage_v=float(document["voltage_v"]),
            temperature_c=float(document["temperature_c"]),
            rail=str(document["rail"]),
            pattern=str(document["pattern"]),
            n_runs=int(document["n_runs"]),
            counts=tuple(int(c) for c in document["counts"]),
            operational=bool(document["operational"]),
            bram_power_w=(
                None if document.get("bram_power_w") is None
                else float(document["bram_power_w"])
            ),
            per_bram_counts=(
                None if document.get("per_bram_counts") is None
                else tuple(int(c) for c in document["per_bram_counts"])
            ),
        )


def point_key(
    platform: str,
    serial: str,
    rail: str,
    voltage_v: float,
    temperature_c: float,
    pattern: str,
    n_runs: int,
) -> Tuple:
    """The canonical cache key of one operating-point evaluation.

    The issue-level contract is (serial, platform, voltage, temperature,
    pattern); ``rail`` and ``n_runs`` are included because the two rails of
    one die fault independently and the count vector depends on how many
    read-back runs were requested.
    """
    return (
        str(platform),
        str(serial),
        str(rail),
        _quantize_voltage(voltage_v),
        _quantize_temperature(temperature_c),
        str(pattern),
        int(n_runs),
    )


@dataclass
class EvalCache:
    """In-process memo of fault-field evaluations, shared across searches.

    Tracks hit/miss counters so callers can report how many evaluations a
    search actually paid for versus served from memory.  The cache is plain
    data: :meth:`to_document` / :meth:`from_document` round-trip it through
    JSON, which is how the campaign store persists it per die.
    """

    platform: str
    serial: str
    entries: Dict[Tuple, PointEvaluation] = field(default_factory=dict)
    n_hits: int = 0
    n_misses: int = 0

    def __post_init__(self) -> None:
        # The (platform, serial) prefix of every key this cache will ever
        # build is invariant for the cache's lifetime; hoisting it keeps the
        # hot probe loops from re-stringifying the die identity per lookup.
        self._id_prefix = (str(self.platform), str(self.serial))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[PointEvaluation]:
        return iter(self.entries.values())

    def _key(
        self, rail: str, voltage_v: float, temperature_c: float, pattern: str, n_runs: int
    ) -> Tuple:
        # Identical tuple to point_key(...); the prefix is precomputed.
        return self._id_prefix + (
            str(rail),
            _quantize_voltage(voltage_v),
            _quantize_temperature(temperature_c),
            str(pattern),
            int(n_runs),
        )

    def probe_keyer(self, rail: str, pattern: str, n_runs: int):
        """A key builder for one probe loop: only (V, T) vary per call.

        A guardband walk or bisection quantizes hundreds of operating points
        against one fixed (rail, pattern, n_runs); the returned callable
        hoists that invariant suffix (and the die-identity prefix) so the
        loop body quantizes exactly the two floats that change.  Keys are
        tuple-identical to :func:`point_key`.
        """
        prefix = self._id_prefix + (str(rail),)
        suffix = (str(pattern), int(n_runs))

        def key(voltage_v: float, temperature_c: float) -> Tuple:
            return prefix + (
                _quantize_voltage(voltage_v),
                _quantize_temperature(temperature_c),
            ) + suffix

        return key

    # ------------------------------------------------------------------
    def lookup(
        self, rail: str, voltage_v: float, temperature_c: float, pattern: str, n_runs: int
    ) -> Optional[PointEvaluation]:
        """The cached evaluation at an operating point, counting hit or miss."""
        found = self.entries.get(self._key(rail, voltage_v, temperature_c, pattern, n_runs))
        if found is None:
            self.n_misses += 1
        else:
            self.n_hits += 1
        return found

    def store(self, evaluation: PointEvaluation) -> PointEvaluation:
        """Memoize one evaluation (idempotent for identical points)."""
        key = self._key(
            evaluation.rail,
            evaluation.voltage_v,
            evaluation.temperature_c,
            evaluation.pattern,
            evaluation.n_runs,
        )
        self.entries[key] = evaluation
        return evaluation

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, Any]:
        """JSON document of the cache (entries only, not the counters)."""
        return {
            "version": CACHE_VERSION,
            "platform": self.platform,
            "serial": self.serial,
            "entries": [entry.to_dict() for entry in self.entries.values()],
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "EvalCache":
        """Rebuild a cache from its JSON document.

        A version mismatch returns an *empty* cache for the same die — stale
        caches degrade to cold searches, they never corrupt results.
        """
        platform = str(document.get("platform", ""))
        serial = str(document.get("serial", ""))
        cache = cls(platform=platform, serial=serial)
        if document.get("version") != CACHE_VERSION:
            return cache
        for entry in document.get("entries", []):
            cache.store(PointEvaluation.from_dict(entry))
        return cache


__all__ = [
    "CACHE_VERSION",
    "EvalCache",
    "PointEvaluation",
    "SearchError",
    "point_key",
]
