"""Adaptive characterization search: certified bisection, caching, warm starts.

The paper's threshold quantities (Vmin, Vcrash, the critical-region edges)
are discovered by the exhaustive drivers in :mod:`repro.harness.sweep` by
walking the whole voltage grid.  This subsystem finds the *same* grid answers
with an order of magnitude fewer fault-field evaluations:

* :class:`ThresholdBisector` — bracketing + bisection over the descending
  ladder, emitting a :class:`BisectionCertificate` that proves grid
  equivalence;
* :class:`EvalCache` — memoized operating-point evaluations shared across
  searches in-process and persisted per die by the campaign store;
* :class:`WarmStartModel` — fleet-quantile warm brackets (same part number
  first, pooled fallback, cold bisection when nothing is known);
* :class:`SearchReport` — uniform evaluation accounting for both modes.

See ``docs/adaptive_search.md`` for the algorithm and the equivalence
argument.
"""

from .bisect import (
    BisectionCertificate,
    BracketHint,
    CertificateEntry,
    ThresholdBisector,
    exhaustive_first_false,
)
from .cache import CACHE_VERSION, EvalCache, PointEvaluation, SearchError, point_key
from .fleet import FleetBisector
from .outcome import (
    SEARCH_MODES,
    SearchReport,
    merge_search_documents,
    validate_search_mode,
)
from .warmstart import WarmStartModel

__all__ = [
    "BisectionCertificate",
    "BracketHint",
    "CACHE_VERSION",
    "CertificateEntry",
    "EvalCache",
    "FleetBisector",
    "PointEvaluation",
    "SEARCH_MODES",
    "SearchError",
    "SearchReport",
    "ThresholdBisector",
    "WarmStartModel",
    "exhaustive_first_false",
    "merge_search_documents",
    "point_key",
    "validate_search_mode",
]
