"""Cross-chip warm-starting of threshold searches from fleet statistics.

Dies sharing a part number crash and fault at very similar grid voltages —
the fleet campaigns of PR 2 show per-platform Vmin/Vcrash distributions only
a step or two wide.  A chip's bisection bracket can therefore be seeded from
the *running quantiles* of the population characterized so far: same part
number first, the pooled fleet as a fallback, cold bisection when nothing is
known yet.

The model is deliberately conservative: brackets are widened by a margin of
grid steps on both sides, and the bisector treats them as hints only (it
re-evaluates both ends and gallops outward when a hint is wrong), so a
surprising die costs extra evaluations but always gets the same certified
answer a cold search would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from .bisect import BracketHint

#: Quantile band used for warm brackets (wide enough to cover stragglers).
_LOW_QUANTILE = 0.0
_HIGH_QUANTILE = 1.0


def _quantile(values: List[float], q: float) -> float:
    """Linear-interpolated quantile of a small sample (no numpy needed)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class WarmStartModel:
    """Running per-(platform, rail) Vmin/Vcrash statistics for a fleet.

    ``margin_steps`` grid steps are added on each side of the observed
    quantile band when producing a bracket, so single-die outliers inside
    the band cost at most a couple of extra probes.
    """

    step_v: float
    margin_steps: int = 1
    #: (platform, rail) -> list of (vmin_v, vcrash_v) observations.
    observations: Dict[Tuple[str, str], List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    def add(self, platform: str, rail: str, vmin_v: float, vcrash_v: float) -> None:
        """Record one die's discovered thresholds."""
        self.observations.setdefault((str(platform), str(rail)), []).append(
            (float(vmin_v), float(vcrash_v))
        )

    @property
    def n_observations(self) -> int:
        """Total number of recorded (die, rail) threshold pairs."""
        return sum(len(values) for values in self.observations.values())

    # ------------------------------------------------------------------
    def _pool(self, platform: str, rail: str) -> List[Tuple[float, float]]:
        """Same-part-number observations first; pooled fleet as fallback."""
        same = self.observations.get((platform, rail), [])
        if same:
            return same
        pooled: List[Tuple[float, float]] = []
        for (_platform, other_rail), values in self.observations.items():
            if other_rail == rail:
                pooled.extend(values)
        return pooled

    def _bracket(self, values: List[float]) -> BracketHint:
        margin = self.margin_steps * self.step_v
        return BracketHint(
            above_v=_quantile(values, _HIGH_QUANTILE) + margin,
            below_v=_quantile(values, _LOW_QUANTILE) - margin,
        )

    def vmin_hint(self, platform: str, rail: str) -> BracketHint:
        """Warm bracket for the Vmin (fault-free boundary) search."""
        pool = self._pool(platform, rail)
        if not pool:
            return BracketHint()
        return self._bracket([vmin for vmin, _ in pool])

    def vcrash_hint(self, platform: str, rail: str) -> BracketHint:
        """Warm bracket for the Vcrash (operational boundary) search."""
        pool = self._pool(platform, rail)
        if not pool:
            return BracketHint()
        return self._bracket([vcrash for _, vcrash in pool])

    # ------------------------------------------------------------------
    # Serialization (the runner ships the model to worker processes)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form of the model."""
        return {
            "step_v": self.step_v,
            "margin_steps": self.margin_steps,
            "observations": [
                {
                    "platform": platform,
                    "rail": rail,
                    "thresholds": [list(pair) for pair in values],
                }
                for (platform, rail), values in sorted(self.observations.items())
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "WarmStartModel":
        """Inverse of :meth:`to_dict`."""
        model = cls(
            step_v=float(document["step_v"]),
            margin_steps=int(document.get("margin_steps", 1)),
        )
        for record in document.get("observations", []):
            for vmin_v, vcrash_v in record["thresholds"]:
                model.add(record["platform"], record["rail"], vmin_v, vcrash_v)
        return model


__all__ = ["WarmStartModel"]
