"""Certified bracketing + bisection over descending voltage ladders.

The paper's headline quantities — Vmin, Vcrash, the critical-region edges —
are *threshold crossings*: walking a rail down the 10 mV grid, some monotone
predicate (``no observable fault``, ``design still operates``) is true for a
prefix of the ladder and false for the rest.  The exhaustive drivers locate
the crossing by evaluating every grid point; :class:`ThresholdBisector`
locates the same crossing with ``O(log n)`` evaluations and *proves* the
answer is identical:

* the **bracket invariant** — at every moment the search holds an evaluated
  index where the predicate is true and an evaluated index where it is false;
* the **certificate** — every evaluation is recorded, and the final bracket
  is adjacent (``true at boundary-1``, ``false at boundary``), so under
  monotonicity the boundary equals what a full ladder walk would report.

Monotonicity itself is a property of the fault model (a bitcell that fires
at some voltage fires at every lower voltage; the run-axis median preserves
this), asserted by the property tests in ``tests/search/``.

Warm starts are *hints, not trust*: a bracket seeded from the fleet's
running quantiles is still evaluated at both ends, and the search degrades
gracefully — galloping outward — whenever a hint turns out wrong, so a bad
hint can cost evaluations but can never change the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.obs import trace as obs_trace

from .cache import SearchError


@dataclass(frozen=True)
class BracketHint:
    """A warm-start bracket for one threshold search, in volts.

    ``above_v`` is a voltage believed to be on the predicate-true side of the
    boundary (higher voltage), ``below_v`` one believed to be on the false
    side.  Either may be ``None``; a completely empty hint means a cold
    search.  Hints are clamped onto the ladder, so out-of-grid voltages are
    safe.
    """

    above_v: Optional[float] = None
    below_v: Optional[float] = None

    @property
    def is_cold(self) -> bool:
        """Whether the hint carries no information at all."""
        return self.above_v is None and self.below_v is None


@dataclass(frozen=True)
class CertificateEntry:
    """One recorded evaluation of the search predicate."""

    index: int
    voltage_v: float
    predicate: bool
    from_cache: bool = False


@dataclass(frozen=True)
class BisectionCertificate:
    """Proof object that a bisection found the exhaustive-walk boundary.

    ``boundary_index`` is the first ladder index where the predicate is
    false; ``len(ladder)`` means the predicate held all the way down the
    grid.  :meth:`verify` re-checks the evidence; it does not re-run any
    evaluation.
    """

    quantity: str
    ladder: Tuple[float, ...]
    boundary_index: int
    entries: Tuple[CertificateEntry, ...]

    @property
    def n_evaluations(self) -> int:
        """Number of fresh predicate evaluations the search paid for."""
        return sum(1 for entry in self.entries if not entry.from_cache)

    @property
    def n_cache_hits(self) -> int:
        """Number of probes served from a cache or an earlier search."""
        return sum(1 for entry in self.entries if entry.from_cache)

    @property
    def boundary_voltage_above(self) -> Optional[float]:
        """Lowest predicate-true ladder voltage (``None`` if none is true)."""
        if self.boundary_index == 0:
            return None
        return self.ladder[self.boundary_index - 1]

    @property
    def boundary_voltage_below(self) -> Optional[float]:
        """Highest predicate-false ladder voltage (``None`` if grid exhausted)."""
        if self.boundary_index >= len(self.ladder):
            return None
        return self.ladder[self.boundary_index]

    def verify(self) -> bool:
        """Check the certificate's evidence; raise :class:`SearchError` if bad.

        Valid evidence means: every recorded index is on the ladder with the
        ladder's voltage; the recorded predicates are consistent with one
        monotone boundary at ``boundary_index`` (true strictly above, false
        at or below); and the bracket is *adjacent* — ``boundary_index - 1``
        and ``boundary_index`` were both actually evaluated (grid edges
        excepted), which is exactly the evidence an exhaustive walk would
        hold at the crossing.
        """
        n = len(self.ladder)
        if not 0 <= self.boundary_index <= n:
            raise SearchError(
                f"{self.quantity}: boundary index {self.boundary_index} outside grid"
            )
        seen: Dict[int, bool] = {}
        for entry in self.entries:
            if not 0 <= entry.index < n:
                raise SearchError(f"{self.quantity}: evaluated index {entry.index} off grid")
            if self.ladder[entry.index] != entry.voltage_v:
                raise SearchError(
                    f"{self.quantity}: entry voltage {entry.voltage_v} does not match "
                    f"ladder[{entry.index}] = {self.ladder[entry.index]}"
                )
            if entry.index in seen and seen[entry.index] != entry.predicate:
                raise SearchError(
                    f"{self.quantity}: contradictory evaluations at index {entry.index}"
                )
            seen[entry.index] = entry.predicate
        for index, value in seen.items():
            expected = index < self.boundary_index
            if value != expected:
                raise SearchError(
                    f"{self.quantity}: evaluation at index {index} is {value}, "
                    f"inconsistent with boundary {self.boundary_index} under monotonicity"
                )
        if self.boundary_index > 0 and (self.boundary_index - 1) not in seen:
            raise SearchError(
                f"{self.quantity}: bracket not adjacent — index "
                f"{self.boundary_index - 1} (last true) was never evaluated"
            )
        if self.boundary_index < n and self.boundary_index not in seen:
            raise SearchError(
                f"{self.quantity}: bracket not adjacent — index "
                f"{self.boundary_index} (first false) was never evaluated"
            )
        return True

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON form (stored in campaign unit summaries)."""
        return {
            "quantity": self.quantity,
            "n_grid_points": len(self.ladder),
            "boundary_index": self.boundary_index,
            "boundary_voltage_above": self.boundary_voltage_above,
            "boundary_voltage_below": self.boundary_voltage_below,
            "n_evaluations": self.n_evaluations,
            "n_cache_hits": self.n_cache_hits,
            "evaluated_indices": [entry.index for entry in self.entries],
        }


class ThresholdBisector:
    """Find the first false index of a monotone predicate on a ladder.

    Parameters
    ----------
    ladder:
        Descending voltage grid, index 0 at the highest voltage.
    probe:
        ``probe(index) -> (predicate, from_cache)``; called at most once per
        index per search (results are memoized internally).  ``from_cache``
        marks probes that cost no fresh fault-field evaluation.  May be
        ``None`` when the caller drives :meth:`search_steps` itself (the
        fleet bisector answers many dies' pending probes per batched wave).
    """

    def __init__(
        self,
        ladder: Sequence[float],
        probe: Optional[Callable[[int], Tuple[bool, bool]]] = None,
    ) -> None:
        if not ladder:
            raise SearchError("cannot bisect an empty voltage ladder")
        if any(b >= a for a, b in zip(ladder, ladder[1:])):
            raise SearchError("bisection ladders must be strictly descending")
        self.ladder = tuple(float(v) for v in ladder)
        self._probe = probe
        self._seen: Dict[int, bool] = {}
        self._entries: List[CertificateEntry] = []

    # ------------------------------------------------------------------
    def _evaluate_step(
        self, index: int
    ) -> Generator[int, Tuple[bool, bool], bool]:
        """Yield one probe request, memoized, recording the certificate entry.

        The generator protocol of the whole search: yielded values are
        ladder indices to probe, sent values are ``(predicate,
        from_cache)`` answers.  A memoized index never reaches the caller.
        """
        if index in self._seen:
            return self._seen[index]
        predicate, from_cache = yield index
        self._seen[index] = bool(predicate)
        self._entries.append(
            CertificateEntry(
                index=index,
                voltage_v=self.ladder[index],
                predicate=bool(predicate),
                from_cache=bool(from_cache),
            )
        )
        return self._seen[index]

    def _index_at_or_above(self, voltage_v: float) -> int:
        """Highest-index ladder point with voltage >= ``voltage_v``, clamped."""
        candidates = [i for i, v in enumerate(self.ladder) if v >= voltage_v - 1e-9]
        return candidates[-1] if candidates else 0

    def _index_at_or_below(self, voltage_v: float) -> int:
        """Lowest-index ladder point with voltage <= ``voltage_v``, clamped."""
        for i, v in enumerate(self.ladder):
            if v <= voltage_v + 1e-9:
                return i
        return len(self.ladder) - 1

    # ------------------------------------------------------------------
    def find_first_false(
        self,
        quantity: str,
        hint: Optional[BracketHint] = None,
    ) -> BisectionCertificate:
        """Locate the monotone predicate's first false index, certified.

        Without a hint the search starts from the grid edges; with one it
        starts from the hinted bracket and gallops outward whenever an end
        of the bracket fails to hold, so wrong hints cost evaluations but
        never correctness.

        This is the sequential driver of :meth:`search_steps`: each yielded
        index is answered immediately by the constructor's ``probe``.
        """
        if self._probe is None:
            raise SearchError(
                "this bisector was built without a probe; drive search_steps "
                "directly instead"
            )
        steps = self.search_steps(quantity, hint)
        try:
            index = next(steps)
            while True:
                index = steps.send(self._probe(index))
        except StopIteration as stop:
            return stop.value

    def search_steps(
        self,
        quantity: str,
        hint: Optional[BracketHint] = None,
    ) -> Generator[int, Tuple[bool, bool], BisectionCertificate]:
        """The search as a resumable generator of probe requests.

        Yields ladder indices that need evaluating; the caller sends back
        ``(predicate, from_cache)`` and receives the next index, until the
        generator returns the :class:`BisectionCertificate` (as the
        ``StopIteration`` value).  Exactly the probe sequence — and
        therefore exactly the certificate — of :meth:`find_first_false`;
        the generator form exists so a fleet driver can hold many searches
        open at once and answer one *wave* of pending probes with a single
        batched kernel call.
        """
        with obs_trace.span("search.bisect", quantity=quantity):
            return (yield from self._search_steps(quantity, hint))

    def _search_steps(
        self,
        quantity: str,
        hint: Optional[BracketHint],
    ) -> Generator[int, Tuple[bool, bool], BisectionCertificate]:
        n = len(self.ladder)
        hint = hint or BracketHint()

        # --- establish an evaluated TRUE anchor --------------------------
        true_idx: Optional[int] = None
        candidate = 0 if hint.above_v is None else self._index_at_or_above(hint.above_v)
        stride = 1
        while True:
            if (yield from self._evaluate_step(candidate)):
                true_idx = candidate
                break
            if candidate == 0:
                break  # predicate false on the whole grid
            candidate = max(0, candidate - stride)
            stride *= 2

        if true_idx is None:
            return self._certificate(quantity, boundary_index=0)

        # --- establish an evaluated FALSE anchor -------------------------
        false_idx: Optional[int] = None
        if hint.below_v is not None:
            candidate = max(self._index_at_or_below(hint.below_v), true_idx + 1)
        else:
            candidate = true_idx + 1
        stride = 1
        while candidate < n:
            if not (yield from self._evaluate_step(candidate)):
                false_idx = candidate
                break
            true_idx = max(true_idx, candidate)
            candidate = min(n - 1, candidate + stride) if candidate < n - 1 else n
            stride *= 2

        if false_idx is None:
            return self._certificate(quantity, boundary_index=n)

        # --- bisect the bracket ------------------------------------------
        while false_idx - true_idx > 1:
            mid = (true_idx + false_idx) // 2
            if (yield from self._evaluate_step(mid)):
                true_idx = mid
            else:
                false_idx = mid
        return self._certificate(quantity, boundary_index=false_idx)

    def _certificate(self, quantity: str, boundary_index: int) -> BisectionCertificate:
        certificate = BisectionCertificate(
            quantity=quantity,
            ladder=self.ladder,
            boundary_index=boundary_index,
            entries=tuple(self._entries),
        )
        certificate.verify()
        return certificate


def exhaustive_first_false(
    ladder: Sequence[float], predicate: Callable[[int], bool]
) -> int:
    """Reference linear scan: first index where ``predicate`` is false.

    The property tests pit :class:`ThresholdBisector` against this on random
    monotone grids; it is also what the exhaustive sweep drivers implicitly
    compute.
    """
    for index in range(len(ladder)):
        if not predicate(index):
            return index
    return len(ladder)


__all__ = [
    "BracketHint",
    "BisectionCertificate",
    "CertificateEntry",
    "ThresholdBisector",
    "exhaustive_first_false",
]
