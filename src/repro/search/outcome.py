"""Uniform accounting of what a characterization search cost.

Both search modes produce a :class:`SearchReport`: the exhaustive drivers
report the grid walk they performed, the adaptive drivers report fresh
evaluations, cache hits, the certificates proving grid-equivalence, and the
evaluation count the exhaustive walk *would* have paid on the same grid.
Campaign unit summaries, CLI ``--json`` documents and the fleet reports all
carry this dictionary, which is what the ``bench_adaptive_search`` acceptance
benchmark sums into its >= 5x claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple

from .bisect import BisectionCertificate

#: The two search modes every driver and campaign knob accepts.
SEARCH_MODES: Tuple[str, ...] = ("adaptive", "exhaustive")


def validate_search_mode(mode: str) -> str:
    """Normalize and validate a search-mode knob value."""
    normalized = str(mode).strip().lower()
    if normalized not in SEARCH_MODES:
        from .cache import SearchError

        raise SearchError(
            f"unknown search mode {mode!r}; expected one of {SEARCH_MODES}"
        )
    return normalized


@dataclass
class SearchReport:
    """What one search (or one exhaustive walk) actually evaluated.

    ``n_exhaustive_equivalent`` is the number of fault-field evaluations the
    exhaustive driver performs for the same answer on the same grid; for an
    exhaustive run it equals ``n_evaluations`` by construction.
    """

    mode: str
    n_evaluations: int
    n_cache_hits: int = 0
    n_exhaustive_equivalent: int = 0
    certificates: Tuple[BisectionCertificate, ...] = ()

    @property
    def evaluations_saved(self) -> int:
        """Evaluations avoided relative to the exhaustive walk (>= 0)."""
        return max(0, self.n_exhaustive_equivalent - self.n_evaluations)

    @property
    def saved_fraction(self) -> float:
        """Saved evaluations as a fraction of the exhaustive cost."""
        if self.n_exhaustive_equivalent <= 0:
            return 0.0
        return self.evaluations_saved / self.n_exhaustive_equivalent

    def verify_certificates(self) -> bool:
        """Re-check every attached certificate (no evaluations are re-run)."""
        for certificate in self.certificates:
            certificate.verify()
        return True

    def to_dict(self) -> Dict[str, Any]:
        """JSON form carried by unit summaries and ``--json`` documents."""
        return {
            "mode": self.mode,
            "n_evaluations": self.n_evaluations,
            "n_cache_hits": self.n_cache_hits,
            "n_exhaustive_equivalent": self.n_exhaustive_equivalent,
            "evaluations_saved": self.evaluations_saved,
            "certificates": [c.to_dict() for c in self.certificates],
        }


def merge_search_documents(documents: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum the JSON forms of several search reports into fleet totals.

    Accepts the dictionaries produced by :meth:`SearchReport.to_dict` (or
    loaded back from campaign unit summaries) and returns the aggregate the
    fleet reports publish: total evaluations, cache hits, the exhaustive
    equivalent, the saved fraction and the resulting speedup factor.
    """
    totals = {
        "n_units": 0,
        "n_evaluations": 0,
        "n_cache_hits": 0,
        "n_exhaustive_equivalent": 0,
    }
    for document in documents:
        if not document:
            continue
        totals["n_units"] += 1
        totals["n_evaluations"] += int(document.get("n_evaluations", 0))
        totals["n_cache_hits"] += int(document.get("n_cache_hits", 0))
        totals["n_exhaustive_equivalent"] += int(
            document.get("n_exhaustive_equivalent", 0)
        )
    saved = max(0, totals["n_exhaustive_equivalent"] - totals["n_evaluations"])
    totals["evaluations_saved"] = saved
    totals["saved_fraction"] = (
        saved / totals["n_exhaustive_equivalent"]
        if totals["n_exhaustive_equivalent"] > 0
        else 0.0
    )
    totals["speedup_factor"] = (
        totals["n_exhaustive_equivalent"] / totals["n_evaluations"]
        if totals["n_evaluations"] > 0
        else 0.0
    )
    return totals


__all__ = [
    "SEARCH_MODES",
    "SearchReport",
    "merge_search_documents",
    "validate_search_mode",
]
