"""Lockstep wave driver for many concurrent threshold searches.

A fleet characterization runs one certified bisection *per die* — but every
die's next probe is known before any die's answer is, so there is no reason
to finish die 0's search before starting die 1's.  :class:`FleetBisector`
holds every die's search open as a suspended generator (see
:meth:`repro.search.bisect.ThresholdBisector.search_steps`), collects the
one pending probe of each still-active search into a *wave*, and hands the
whole wave to a caller-supplied batched evaluator — one kernel call per
wave instead of one backend crossing per probe per die.

The driver is pure control flow: it never looks inside requests or answers
(they are opaque to it), so the same lockstep engine can advance plain
bisections, chained Vmin→Vcrash guardband plans, or anything else that
speaks the yield-request / send-answer protocol.  Each search still sees
exactly the probe sequence its sequential driver would produce, which is
why the per-die certificates come out identical (asserted by
``tests/search/test_fleet_bisect.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Hashable, Mapping

from .cache import SearchError


class FleetBisector:
    """Advance a mapping of search generators in batched lockstep waves.

    Parameters
    ----------
    plans:
        ``key -> generator`` where each generator yields opaque probe
        requests, accepts answers via ``send`` and returns its final result
        (certificate, guardband plan product, ...) as the ``StopIteration``
        value.

    Attributes
    ----------
    n_waves:
        Batched evaluation rounds performed by :meth:`run`.
    n_steps:
        Total probe requests answered across all waves (the Python-level
        crossings a sequential driver would have paid one call each for).
    """

    def __init__(
        self, plans: Mapping[Hashable, Generator[Any, Any, Any]]
    ) -> None:
        self.plans: Dict[Hashable, Generator[Any, Any, Any]] = dict(plans)
        self.n_waves = 0
        self.n_steps = 0

    def run(
        self,
        evaluate_wave: Callable[[Dict[Hashable, Any]], Mapping[Hashable, Any]],
    ) -> Dict[Hashable, Any]:
        """Drive every plan to completion; returns ``key -> plan result``.

        Per wave, ``evaluate_wave`` receives the pending ``key -> request``
        mapping of every still-active plan and must answer *all* of them
        (keys missing from its result are an error — dropping a die's probe
        would silently stall its search).
        """
        results: Dict[Hashable, Any] = {}
        pending: Dict[Hashable, Any] = {}
        for key, plan in self.plans.items():
            try:
                pending[key] = next(plan)
            except StopIteration as stop:  # degenerate plan: no probes at all
                results[key] = stop.value
        while pending:
            self.n_waves += 1
            self.n_steps += len(pending)
            answers = evaluate_wave(dict(pending))
            advanced: Dict[Hashable, Any] = {}
            for key, request in pending.items():
                if key not in answers:
                    raise SearchError(
                        f"wave evaluator answered no request for plan {key!r}"
                    )
                try:
                    advanced[key] = self.plans[key].send(answers[key])
                except StopIteration as stop:
                    results[key] = stop.value
            pending = advanced
        return results


__all__ = ["FleetBisector"]
