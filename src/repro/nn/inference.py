"""Inference engines: float reference and bit-accurate fixed-point.

The FPGA accelerator performs the classification (inference) phase only: the
weights are quantized offline, loaded into BRAMs, and the matrix
multiplications and sigmoid activations run on DSPs and LUTs in a streaming
fashion.  For the undervolting study the essential property is that inference
consumes the *encoded 16-bit weight words stored in BRAMs*, so a bit flip in
a stored word is exactly a bit flip in the weight the datapath sees.

:class:`QuantizedNetwork` holds those encoded words (per layer, with the
per-layer minimum-precision formats of Fig. 9) and decodes them on the fly
during the forward pass.  The accelerator package swaps words in and out of
the simulated BRAMs and re-runs inference to measure the accuracy impact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .fixedpoint import DEFAULT_TOTAL_BITS, FixedPointFormat, per_layer_formats, zero_bit_fraction
from .model import FullyConnectedNetwork, logsig, softmax


class InferenceError(ValueError):
    """Raised for malformed quantized networks or inputs."""


@dataclass
class QuantizedLayer:
    """One layer's weights encoded as fixed-point words.

    Attributes
    ----------
    index:
        Layer index (``Layer_j`` of the paper).
    fmt:
        The per-layer minimum-precision format.
    weight_words:
        Encoded weight words, shaped like the float weight matrix
        ``(n_inputs, n_outputs)``.
    biases:
        Float biases; the accelerator keeps biases in flip-flops, outside the
        undervolted BRAMs, so they are not subject to fault injection.
    """

    index: int
    fmt: FixedPointFormat
    weight_words: np.ndarray
    biases: np.ndarray

    def __post_init__(self) -> None:
        self.weight_words = np.asarray(self.weight_words, dtype=np.uint32)
        self.biases = np.asarray(self.biases, dtype=float)
        if self.weight_words.ndim != 2:
            raise InferenceError("weight words must form a 2-D matrix")
        if self.biases.shape != (self.weight_words.shape[1],):
            raise InferenceError("bias vector length must match the layer output width")

    @property
    def n_weights(self) -> int:
        """Number of weight words in this layer."""
        return int(self.weight_words.size)

    def decoded_weights(self) -> np.ndarray:
        """Float weight matrix as the datapath sees it."""
        return self.fmt.decode_array(self.weight_words)

    def flat_words(self) -> np.ndarray:
        """Weight words flattened in row-major order (the BRAM storage order)."""
        return self.weight_words.reshape(-1)

    def set_flat_words(self, words: Sequence[int]) -> None:
        """Replace the layer's words from flat storage order (after fault injection)."""
        words = np.asarray(words, dtype=np.uint32)
        if words.size != self.weight_words.size:
            raise InferenceError(
                f"layer {self.index} expects {self.weight_words.size} words, got {words.size}"
            )
        self.weight_words = words.reshape(self.weight_words.shape)

    def zero_bit_fraction(self) -> float:
        """Fraction of zero bits among this layer's stored weight bits."""
        return zero_bit_fraction(self.weight_words, total_bits=self.fmt.total_bits)


@dataclass
class QuantizedNetwork:
    """A fully-connected classifier with BRAM-resident fixed-point weights."""

    topology: Tuple[int, ...]
    layers: List[QuantizedLayer] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        network: FullyConnectedNetwork,
        total_bits: int = DEFAULT_TOTAL_BITS,
    ) -> "QuantizedNetwork":
        """Quantize a trained float network with per-layer minimum precision."""
        formats = per_layer_formats(network, total_bits)
        layers = [
            QuantizedLayer(
                index=j,
                fmt=formats[j],
                weight_words=formats[j].encode_array(layer.weights),
                biases=layer.biases.copy(),
            )
            for j, layer in enumerate(network.layers)
        ]
        return cls(topology=network.topology, layers=layers)

    # ------------------------------------------------------------------
    @property
    def n_weight_layers(self) -> int:
        """Number of weight sets."""
        return len(self.layers)

    @property
    def n_weights(self) -> int:
        """Total number of stored weight words."""
        return sum(layer.n_weights for layer in self.layers)

    def layer(self, index: int) -> QuantizedLayer:
        """Quantized weight set ``Layer_index``."""
        if not 0 <= index < len(self.layers):
            raise InferenceError(f"layer index {index} out of range")
        return self.layers[index]

    def copy(self) -> "QuantizedNetwork":
        """Deep copy, used to keep a pristine reference next to a faulty instance."""
        layers = [
            QuantizedLayer(
                index=l.index,
                fmt=l.fmt,
                weight_words=l.weight_words.copy(),
                biases=l.biases.copy(),
            )
            for l in self.layers
        ]
        return QuantizedNetwork(topology=self.topology, layers=layers)

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass decoding the stored words, returning class probabilities."""
        activations = np.asarray(inputs, dtype=float)
        if activations.ndim == 1:
            activations = activations[None, :]
        if activations.shape[1] != self.topology[0]:
            raise InferenceError(
                f"input width {activations.shape[1]} does not match topology input "
                f"{self.topology[0]}"
            )
        last = len(self.layers) - 1
        for j, layer in enumerate(self.layers):
            weights = layer.decoded_weights()
            pre = activations @ weights + layer.biases
            activations = softmax(pre) if j == last else logsig(pre)
        return activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class per input row."""
        return self.forward(inputs).argmax(axis=1)

    def classification_error(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of misclassified samples."""
        predictions = self.predict(inputs)
        return float(np.mean(predictions != np.asarray(labels)))

    # ------------------------------------------------------------------
    # Bit-level statistics
    # ------------------------------------------------------------------
    def zero_bit_fraction(self) -> float:
        """Fraction of zero bits over every stored weight word (paper: 76.3 %)."""
        total_bits = 0
        zero_bits = 0.0
        for layer in self.layers:
            bits = layer.weight_words.size * layer.fmt.total_bits
            zero_bits += layer.zero_bit_fraction() * bits
            total_bits += bits
        if total_bits == 0:
            return 1.0
        return zero_bits / total_bits

    def precision_summary(self) -> List[Dict[str, int]]:
        """Per-layer sign/digit/fraction widths (Fig. 9)."""
        return [
            {
                "layer": layer.index,
                "sign_bits": layer.fmt.sign_bits,
                "digit_bits": layer.fmt.digit_bits,
                "fraction_bits": layer.fmt.fraction_bits,
            }
            for layer in self.layers
        ]
