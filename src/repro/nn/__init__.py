"""Neural-network substrate: datasets, training, quantization, inference.

Implements the workload side of the paper's case study (Section III): the
fully-connected classifier of Table III, its offline training, the 16-bit
per-layer minimum-precision fixed-point representation of Fig. 9, and the
bit-accurate quantized inference engine whose weight words live in BRAMs.
"""

from .datasets import (
    BENCHMARKS,
    Dataset,
    DatasetError,
    load_benchmark,
    one_hot_labels,
    synthetic_forest,
    synthetic_mnist,
    synthetic_reuters,
)
from .fixedpoint import (
    DEFAULT_TOTAL_BITS,
    FixedPointError,
    FixedPointFormat,
    minimum_digit_bits,
    minimum_format_for,
    per_layer_formats,
    precision_table,
    zero_bit_fraction,
)
from .inference import InferenceError, QuantizedLayer, QuantizedNetwork
from .metrics import (
    AccuracyDelta,
    MetricsError,
    accuracy,
    classification_error,
    confusion_matrix,
    per_class_error,
    weight_value_sparsity,
)
from .model import (
    DenseLayer,
    FullyConnectedNetwork,
    ModelError,
    PAPER_TOPOLOGY,
    SCALED_TOPOLOGY,
    logsig,
    logsig_derivative,
    softmax,
)
from .train import TrainingConfig, TrainingError, TrainingResult, train_network

__all__ = [
    "AccuracyDelta",
    "BENCHMARKS",
    "DEFAULT_TOTAL_BITS",
    "Dataset",
    "DatasetError",
    "DenseLayer",
    "FixedPointError",
    "FixedPointFormat",
    "FullyConnectedNetwork",
    "InferenceError",
    "MetricsError",
    "ModelError",
    "PAPER_TOPOLOGY",
    "SCALED_TOPOLOGY",
    "QuantizedLayer",
    "QuantizedNetwork",
    "TrainingConfig",
    "TrainingError",
    "TrainingResult",
    "accuracy",
    "classification_error",
    "confusion_matrix",
    "load_benchmark",
    "logsig",
    "logsig_derivative",
    "minimum_digit_bits",
    "minimum_format_for",
    "one_hot_labels",
    "per_class_error",
    "per_layer_formats",
    "precision_table",
    "softmax",
    "synthetic_forest",
    "synthetic_mnist",
    "synthetic_reuters",
    "train_network",
    "weight_value_sparsity",
    "zero_bit_fraction",
]
