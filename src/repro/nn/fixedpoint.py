"""16-bit fixed-point data representation with per-layer minimum precision.

Section III-A of the paper stores each weight as a 16-bit fixed-point value
composed of *sign*, *digit* (integer) and *fraction* components.  A
pre-processing pass finds, per layer, the minimum sign and digit widths that
represent the trained weights without accuracy loss, and the remaining bits
become fraction bits (Fig. 9): every layer except the last needs no digit
bits because its weights lie inside (-1, 1), while the last layer needs a
4-bit digit component.

The representation here is sign-magnitude (1 sign bit + digit bits +
fraction bits), which matches the paper's decomposition and gives the
bit-level sparsity the fault-tolerance argument rests on: small weights have
mostly ``0`` bits, and a ``1 -> 0`` flip can only move a weight towards zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .model import FullyConnectedNetwork

#: Word width used by the accelerator's weight memories (one BRAM column set).
DEFAULT_TOTAL_BITS = 16


class FixedPointError(ValueError):
    """Raised for invalid fixed-point formats or out-of-range encodings."""


@dataclass(frozen=True)
class FixedPointFormat:
    """A sign-magnitude fixed-point format: 1 sign bit, digit bits, fraction bits."""

    digit_bits: int
    fraction_bits: int
    sign_bits: int = 1

    def __post_init__(self) -> None:
        if self.sign_bits != 1:
            raise FixedPointError("the representation always uses exactly one sign bit")
        if self.digit_bits < 0 or self.fraction_bits < 0:
            raise FixedPointError("bit widths must be non-negative")
        if self.total_bits > 32:
            raise FixedPointError("formats wider than 32 bits are not supported")

    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total word width (16 for the paper's accelerator)."""
        return self.sign_bits + self.digit_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant fraction bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_magnitude(self) -> float:
        """Largest representable absolute value."""
        return (2 ** (self.digit_bits + self.fraction_bits) - 1) * self.scale

    @property
    def resolution(self) -> float:
        """Quantization step (alias of :attr:`scale`)."""
        return self.scale

    def describe(self) -> str:
        """Compact description, e.g. ``"s1.d0.f15"``."""
        return f"s{self.sign_bits}.d{self.digit_bits}.f{self.fraction_bits}"

    # ------------------------------------------------------------------
    # Scalar encode / decode
    # ------------------------------------------------------------------
    def encode(self, value: float) -> int:
        """Encode a float into a sign-magnitude word (saturating)."""
        magnitude = min(abs(float(value)), self.max_magnitude)
        quantized = int(round(magnitude / self.scale))
        quantized = min(quantized, 2 ** (self.digit_bits + self.fraction_bits) - 1)
        sign = 1 if value < 0 else 0
        return (sign << (self.total_bits - 1)) | quantized

    def decode(self, word: int) -> float:
        """Decode a sign-magnitude word back into a float."""
        if not 0 <= word < (1 << self.total_bits):
            raise FixedPointError(f"word {word:#x} does not fit in {self.total_bits} bits")
        sign = (word >> (self.total_bits - 1)) & 1
        magnitude = word & ((1 << (self.total_bits - 1)) - 1)
        value = magnitude * self.scale
        return -value if sign else value

    # ------------------------------------------------------------------
    # Array encode / decode
    # ------------------------------------------------------------------
    def encode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized encoding into ``uint32`` words (top bits zero)."""
        values = np.asarray(values, dtype=float)
        magnitude = np.minimum(np.abs(values), self.max_magnitude)
        quantized = np.rint(magnitude / self.scale).astype(np.int64)
        quantized = np.minimum(quantized, 2 ** (self.digit_bits + self.fraction_bits) - 1)
        sign = (values < 0).astype(np.int64)
        return ((sign << (self.total_bits - 1)) | quantized).astype(np.uint32)

    def decode_array(self, words: np.ndarray) -> np.ndarray:
        """Vectorized decoding of ``uint`` words back to floats."""
        words = np.asarray(words, dtype=np.int64)
        if (words < 0).any() or (words >= (1 << self.total_bits)).any():
            raise FixedPointError(f"words do not fit in {self.total_bits} bits")
        sign = (words >> (self.total_bits - 1)) & 1
        magnitude = words & ((1 << (self.total_bits - 1)) - 1)
        values = magnitude * self.scale
        return np.where(sign == 1, -values, values)

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Round-trip an array through the format (quantization error only)."""
        return self.decode_array(self.encode_array(values))

    def quantization_error(self, values: np.ndarray) -> float:
        """Maximum absolute quantization error over an array."""
        return float(np.max(np.abs(self.quantize_array(values) - np.asarray(values, dtype=float))))


def minimum_digit_bits(values: np.ndarray) -> int:
    """Minimum number of digit (integer) bits needed for an array of weights."""
    peak = float(np.max(np.abs(np.asarray(values, dtype=float)))) if np.size(values) else 0.0
    if peak < 1.0:
        return 0
    return int(math.floor(math.log2(peak))) + 1


def minimum_format_for(values: np.ndarray, total_bits: int = DEFAULT_TOTAL_BITS) -> FixedPointFormat:
    """Minimum-precision format of Fig. 9 for one layer's weights.

    The digit width is the smallest that avoids saturation of the trained
    weights; every remaining bit beyond the sign becomes fraction.
    """
    digit = minimum_digit_bits(values)
    fraction = total_bits - 1 - digit
    if fraction < 0:
        raise FixedPointError(
            f"weights need {digit} digit bits, which does not fit in {total_bits} bits"
        )
    return FixedPointFormat(digit_bits=digit, fraction_bits=fraction)


def per_layer_formats(
    network: FullyConnectedNetwork, total_bits: int = DEFAULT_TOTAL_BITS
) -> List[FixedPointFormat]:
    """Per-layer minimum-precision formats for a trained network (Fig. 9)."""
    return [minimum_format_for(layer.weights, total_bits) for layer in network.layers]


def precision_table(network: FullyConnectedNetwork, total_bits: int = DEFAULT_TOTAL_BITS) -> List[Dict[str, int]]:
    """Fig. 9 as rows of ``{layer, sign, digit, fraction}`` bit widths."""
    rows: List[Dict[str, int]] = []
    for j, fmt in enumerate(per_layer_formats(network, total_bits)):
        rows.append(
            {
                "layer": j,
                "sign_bits": fmt.sign_bits,
                "digit_bits": fmt.digit_bits,
                "fraction_bits": fmt.fraction_bits,
            }
        )
    return rows


def zero_bit_fraction(words: np.ndarray, total_bits: int = DEFAULT_TOTAL_BITS) -> float:
    """Fraction of ``0`` bits over an array of encoded words.

    The paper measures 76.3 % of the MNIST network's weight bits to be zero,
    which is why the workload tolerates ``1 -> 0`` flips so well.
    """
    words = np.asarray(words, dtype=np.int64)
    if words.size == 0:
        return 1.0
    ones = 0
    for bit in range(total_bits):
        ones += int(((words >> bit) & 1).sum())
    total = words.size * total_bits
    return 1.0 - ones / total
