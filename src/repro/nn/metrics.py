"""Classification and bit-level metrics for the NN case study.

Small, dependency-free helpers shared by the training loop, the accelerator
experiments and the benchmarks: classification error (the paper's accuracy
metric), confusion matrices, and the weight-bit sparsity statistics behind
the inherent fault-tolerance argument of Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


class MetricsError(ValueError):
    """Raised for mismatched metric inputs."""


def classification_error(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of misclassified samples."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise MetricsError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise MetricsError("cannot compute an error over zero samples")
    return float(np.mean(predictions != labels))


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Complement of :func:`classification_error`."""
    return 1.0 - classification_error(predictions, labels)


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Confusion matrix with true classes as rows and predictions as columns."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise MetricsError("predictions and labels must have the same shape")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for true, predicted in zip(labels, predictions):
        if not (0 <= true < n_classes and 0 <= predicted < n_classes):
            raise MetricsError("class index outside [0, n_classes)")
        matrix[true, predicted] += 1
    return matrix


@dataclass(frozen=True)
class AccuracyDelta:
    """Error before and after some perturbation (faults, mitigation, ...)."""

    baseline_error: float
    perturbed_error: float

    @property
    def error_increase(self) -> float:
        """Absolute increase in classification error (the paper's "accuracy loss")."""
        return self.perturbed_error - self.baseline_error

    @property
    def relative_increase(self) -> float:
        """Error increase relative to the baseline error."""
        if self.baseline_error == 0:
            return float("inf") if self.perturbed_error > 0 else 0.0
        return self.error_increase / self.baseline_error


def weight_value_sparsity(weights: Sequence[np.ndarray], threshold: float = 1e-3) -> float:
    """Fraction of weights whose magnitude is below ``threshold``.

    Complements the bit-level sparsity: the paper cites weight sparsity
    studies (Minerva and others) as the reason NN workloads tolerate
    undervolting faults.
    """
    total = 0
    small = 0
    for array in weights:
        array = np.asarray(array)
        total += array.size
        small += int((np.abs(array) < threshold).sum())
    if total == 0:
        raise MetricsError("no weights supplied")
    return small / total


def per_class_error(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> Dict[int, float]:
    """Classification error per true class."""
    matrix = confusion_matrix(predictions, labels, n_classes)
    errors: Dict[int, float] = {}
    for cls in range(n_classes):
        row_total = matrix[cls].sum()
        if row_total == 0:
            errors[cls] = 0.0
        else:
            errors[cls] = 1.0 - matrix[cls, cls] / row_total
    return errors
