"""Offline training of the fully-connected network.

The paper trains its network offline (a MATLAB implementation on the 60 000
MNIST training images) and only the *inference* phase runs on the FPGA.  The
reproduction keeps the same split: this module trains the float network with
plain mini-batch SGD and cross-entropy loss, after which the weights are
quantized and loaded into the (simulated) BRAMs.

Training is deliberately simple — no momentum schedules or regularization
sweeps — because the case study only needs a reasonably accurate classifier
whose weights have the published bit-level properties; the achieved accuracy
on the synthetic datasets is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .datasets import Dataset
from .model import FullyConnectedNetwork, logsig, logsig_derivative, softmax


class TrainingError(ValueError):
    """Raised for invalid training configurations."""


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the offline training stage."""

    epochs: int = 15
    batch_size: int = 64
    learning_rate: float = 0.3
    momentum: float = 0.9
    seed: int = 7
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise TrainingError("epochs must be positive")
        if self.batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise TrainingError("momentum must be in [0, 1)")


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    network: FullyConnectedNetwork
    train_errors: List[float] = field(default_factory=list)
    test_error: Optional[float] = None

    @property
    def final_train_error(self) -> float:
        """Classification error on the training set after the last epoch."""
        return self.train_errors[-1] if self.train_errors else 1.0


def _forward_pass(
    network: FullyConnectedNetwork, inputs: np.ndarray
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Forward pass keeping the per-layer pre- and post-activations."""
    activations = [inputs]
    pre_activations: List[np.ndarray] = []
    current = inputs
    last = network.n_weight_layers - 1
    for j, layer in enumerate(network.layers):
        pre = current @ layer.weights + layer.biases
        pre_activations.append(pre)
        current = softmax(pre) if j == last else logsig(pre)
        activations.append(current)
    return pre_activations, activations


def _backward_pass(
    network: FullyConnectedNetwork,
    activations: List[np.ndarray],
    targets: np.ndarray,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Gradients of the cross-entropy loss for every layer."""
    gradients: List[Tuple[np.ndarray, np.ndarray]] = [None] * network.n_weight_layers  # type: ignore[list-item]
    batch = targets.shape[0]
    # Softmax + cross-entropy gives this simple output delta.
    delta = (activations[-1] - targets) / batch
    for j in range(network.n_weight_layers - 1, -1, -1):
        layer = network.layers[j]
        grad_w = activations[j].T @ delta
        grad_b = delta.sum(axis=0)
        gradients[j] = (grad_w, grad_b)
        if j > 0:
            delta = (delta @ layer.weights.T) * logsig_derivative(activations[j])
    return gradients


def classification_error(network: FullyConnectedNetwork, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of misclassified samples (the paper's error metric)."""
    predictions = network.predict(inputs)
    return float(np.mean(predictions != labels))


def train_network(
    dataset: Dataset,
    topology: Optional[Tuple[int, ...]] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingResult:
    """Train a fully-connected classifier on one dataset.

    ``topology`` defaults to ``(n_features, 128, 64, n_classes)`` for quick
    runs; pass :data:`repro.nn.model.PAPER_TOPOLOGY` to train the full
    Table III network on the MNIST-like benchmark.
    """
    config = config or TrainingConfig()
    if topology is None:
        topology = (dataset.n_features, 128, 64, dataset.n_classes)
    if topology[0] != dataset.n_features:
        raise TrainingError(
            f"topology input width {topology[0]} does not match dataset features "
            f"{dataset.n_features}"
        )
    if topology[-1] != dataset.n_classes:
        raise TrainingError(
            f"topology output width {topology[-1]} does not match dataset classes "
            f"{dataset.n_classes}"
        )

    network = FullyConnectedNetwork.initialize(topology, seed=config.seed)
    rng = np.random.default_rng(config.seed)
    targets = np.zeros((dataset.n_train, dataset.n_classes))
    targets[np.arange(dataset.n_train), dataset.train_labels] = 1.0

    velocities = [
        (np.zeros_like(layer.weights), np.zeros_like(layer.biases)) for layer in network.layers
    ]
    result = TrainingResult(network=network)

    for epoch in range(config.epochs):
        order = rng.permutation(dataset.n_train)
        for start in range(0, dataset.n_train, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            batch_x = dataset.train_inputs[batch_idx]
            batch_t = targets[batch_idx]
            _, activations = _forward_pass(network, batch_x)
            gradients = _backward_pass(network, activations, batch_t)
            for j, layer in enumerate(network.layers):
                grad_w, grad_b = gradients[j]
                vel_w, vel_b = velocities[j]
                vel_w *= config.momentum
                vel_w -= config.learning_rate * grad_w
                vel_b *= config.momentum
                vel_b -= config.learning_rate * grad_b
                layer.weights += vel_w
                layer.biases += vel_b
        train_error = classification_error(network, dataset.train_inputs, dataset.train_labels)
        result.train_errors.append(train_error)
        if config.verbose:  # pragma: no cover - logging only
            print(f"epoch {epoch + 1}/{config.epochs}: train error {train_error:.4f}")

    result.test_error = classification_error(network, dataset.test_inputs, dataset.test_labels)
    return result
