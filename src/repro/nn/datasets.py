"""Synthetic stand-ins for the paper's NN benchmarks.

The paper evaluates the FPGA-based NN accelerator on three datasets: MNIST
(28x28 handwritten digits, 10 classes), Forest covertype (54 cartographic
features, 7 classes) and Reuters (bag-of-words text categorization).  None of
the original datasets ship with this offline reproduction, so deterministic
synthetic equivalents with the same dimensionality and class structure are
generated procedurally instead (documented as a substitution in docs/intro.md).

What matters for the undervolting study is preserved:

* input dimensionality and number of classes match the originals, so the
  published network topology (784-1024-512-256-128-10 for MNIST) applies
  unchanged;
* the trained fixed-point weights are small and therefore *sparse at the bit
  level*, which is what makes the workloads inherently tolerant to ``1 -> 0``
  flips;
* the Reuters-like dataset is generated to be the least separable of the
  three, mirroring the paper's observation that Reuters is "less sparse" and
  suffers the largest accuracy loss under faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


class DatasetError(ValueError):
    """Raised for invalid dataset-generation parameters."""


@dataclass(frozen=True)
class Dataset:
    """A train/test split of one classification benchmark."""

    name: str
    train_inputs: np.ndarray
    train_labels: np.ndarray
    test_inputs: np.ndarray
    test_labels: np.ndarray
    n_classes: int

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return int(self.train_inputs.shape[1])

    @property
    def n_train(self) -> int:
        """Number of training samples."""
        return int(self.train_inputs.shape[0])

    @property
    def n_test(self) -> int:
        """Number of test (inference) samples."""
        return int(self.test_inputs.shape[0])

    def summary(self) -> Dict[str, int]:
        """Shape summary used by the docs and benches."""
        return {
            "features": self.n_features,
            "classes": self.n_classes,
            "train": self.n_train,
            "test": self.n_test,
        }


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    encoded = np.zeros((len(labels), n_classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


def _apply_label_noise(
    labels: np.ndarray, n_classes: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Relabel a fraction of samples uniformly at random.

    Synthetic prototypes are perfectly separable, so without an irreducible
    error floor a trained network would reach 0 % error and the "inherent
    classification error" of the paper's case study (2.56 % for MNIST) would
    have no analogue.  A small amount of label noise restores that floor.
    """
    if fraction <= 0:
        return labels
    noisy = labels.copy()
    n_flip = int(round(fraction * len(labels)))
    if n_flip == 0:
        return noisy
    victims = rng.choice(len(labels), size=n_flip, replace=False)
    noisy[victims] = rng.integers(0, n_classes, size=n_flip)
    return noisy


def _prototype_classification(
    rng: np.random.Generator,
    n_features: int,
    n_classes: int,
    n_train: int,
    n_test: int,
    noise: float,
    sparsity: float,
    prototype_scale: float = 1.0,
    label_noise: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a prototype-plus-noise classification problem.

    Each class gets a sparse non-negative prototype vector; samples are the
    prototype corrupted by Gaussian noise and clipped to [0, 1].  ``noise``
    controls class overlap (and therefore the achievable error rate) while
    ``sparsity`` controls how many features are active per class.
    """
    prototypes = np.zeros((n_classes, n_features))
    n_active = max(1, int(round(sparsity * n_features)))
    for cls in range(n_classes):
        active = rng.choice(n_features, size=n_active, replace=False)
        prototypes[cls, active] = rng.uniform(0.4, 1.0, size=n_active) * prototype_scale

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=count)
        base = prototypes[labels]
        noisy = base + rng.normal(0.0, noise, size=base.shape)
        return np.clip(noisy, 0.0, 1.0), _apply_label_noise(labels, n_classes, label_noise, rng)

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return train_x, train_y, test_x, test_y


def synthetic_mnist(
    n_train: int = 6000,
    n_test: int = 1000,
    seed: int = 2018,
    noise: float = 0.62,
    label_noise: float = 0.005,
) -> Dataset:
    """MNIST-like benchmark: 784 features (28x28), 10 classes.

    Class prototypes are smooth digit-like blobs on the 28x28 grid so nearby
    pixels correlate the way handwriting strokes do.
    """
    if n_train <= 0 or n_test <= 0:
        raise DatasetError("sample counts must be positive")
    rng = np.random.default_rng(seed)
    side = 28
    n_features = side * side
    n_classes = 10

    prototypes = np.zeros((n_classes, side, side))
    yy, xx = np.mgrid[0:side, 0:side]
    for cls in range(n_classes):
        # Each "digit" is a union of a few Gaussian strokes.
        image = np.zeros((side, side))
        n_strokes = 3 + cls % 3
        for _ in range(n_strokes):
            cx, cy = rng.uniform(6, 22, size=2)
            sx, sy = rng.uniform(1.5, 4.5, size=2)
            image += np.exp(-(((xx - cx) / sx) ** 2 + ((yy - cy) / sy) ** 2))
        prototypes[cls] = image / image.max()

    flat = prototypes.reshape(n_classes, n_features)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=count)
        base = flat[labels]
        noisy = base + rng.normal(0.0, noise, size=base.shape)
        return np.clip(noisy, 0.0, 1.0), _apply_label_noise(labels, n_classes, label_noise, rng)

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return Dataset(
        name="MNIST-synthetic",
        train_inputs=train_x,
        train_labels=train_y,
        test_inputs=test_x,
        test_labels=test_y,
        n_classes=n_classes,
    )


def synthetic_forest(
    n_train: int = 6000,
    n_test: int = 1000,
    seed: int = 1998,
    noise: float = 0.30,
    label_noise: float = 0.01,
) -> Dataset:
    """Forest-covertype-like benchmark: 54 features, 7 classes."""
    rng = np.random.default_rng(seed)
    train_x, train_y, test_x, test_y = _prototype_classification(
        rng,
        n_features=54,
        n_classes=7,
        n_train=n_train,
        n_test=n_test,
        noise=noise,
        sparsity=0.45,
        label_noise=label_noise,
    )
    return Dataset(
        name="Forest-synthetic",
        train_inputs=train_x,
        train_labels=train_y,
        test_inputs=test_x,
        test_labels=test_y,
        n_classes=7,
    )


def synthetic_reuters(
    n_train: int = 6000,
    n_test: int = 1000,
    seed: int = 2007,
    noise: float = 0.45,
    label_noise: float = 0.01,
) -> Dataset:
    """Reuters-like benchmark: 1000-dimensional bag-of-words, 8 classes.

    Generated with heavier class overlap and denser prototypes than the other
    two, so its trained weights carry more information per bit and the
    benchmark is the most sensitive to undervolting faults — the qualitative
    property the paper reports for Reuters.
    """
    rng = np.random.default_rng(seed)
    train_x, train_y, test_x, test_y = _prototype_classification(
        rng,
        n_features=1000,
        n_classes=8,
        n_train=n_train,
        n_test=n_test,
        noise=noise,
        sparsity=0.20,
        prototype_scale=1.2,
        label_noise=label_noise,
    )
    return Dataset(
        name="Reuters-synthetic",
        train_inputs=train_x,
        train_labels=train_y,
        test_inputs=test_x,
        test_labels=test_y,
        n_classes=8,
    )


#: Loader registry keyed by the benchmark names the paper uses.
BENCHMARKS = {
    "MNIST": synthetic_mnist,
    "Forest": synthetic_forest,
    "Reuters": synthetic_reuters,
}


def load_benchmark(name: str, **kwargs) -> Dataset:
    """Load one of the three paper benchmarks by name."""
    try:
        loader = BENCHMARKS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from exc
    return loader(**kwargs)


def one_hot_labels(dataset: Dataset, split: str = "train") -> np.ndarray:
    """One-hot targets for a dataset split ("train" or "test")."""
    if split == "train":
        return _one_hot(dataset.train_labels, dataset.n_classes)
    if split == "test":
        return _one_hot(dataset.test_labels, dataset.n_classes)
    raise DatasetError(f"unknown split {split!r}")
