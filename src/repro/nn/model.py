"""Fully-connected neural-network container.

Table III describes the paper's network: a fully-connected classifier with
six layers of 784, 1024, 512, 256, 128 and 10 neurons, logarithmic-sigmoid
activations in the hidden layers and a softmax at the output, for roughly
1.5 million weights.  This module holds the network structure and parameters;
training lives in :mod:`repro.nn.train` and the (float and fixed-point)
forward passes in :mod:`repro.nn.inference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: The topology of Table III (one input, four hidden, one output layer).
PAPER_TOPOLOGY: Tuple[int, ...] = (784, 1024, 512, 256, 128, 10)

#: Width-scaled variant of the paper topology (hidden layers divided by four,
#: same depth and same layer-size ordering).  The experiments default to this
#: so that training and the voltage/accuracy sweeps finish in seconds; the
#: full :data:`PAPER_TOPOLOGY` remains available for the Table III benchmark.
SCALED_TOPOLOGY: Tuple[int, ...] = (784, 256, 128, 64, 32, 10)


class ModelError(ValueError):
    """Raised for inconsistent network definitions."""


def logsig(x: np.ndarray) -> np.ndarray:
    """Logarithmic sigmoid activation, numerically stabilized."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def logsig_derivative(activated: np.ndarray) -> np.ndarray:
    """Derivative of the sigmoid expressed in terms of its output."""
    return activated * (1.0 - activated)


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax used by the output layer."""
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class DenseLayer:
    """One fully-connected weight set (``Layer_j`` between ``L_j`` and ``L_j+1``)."""

    index: int
    weights: np.ndarray
    biases: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.biases = np.asarray(self.biases, dtype=float)
        if self.weights.ndim != 2:
            raise ModelError("layer weights must be a 2-D matrix")
        if self.biases.shape != (self.weights.shape[1],):
            raise ModelError("bias vector length must match the layer's output width")

    @property
    def n_inputs(self) -> int:
        """Number of neurons feeding this weight set."""
        return int(self.weights.shape[0])

    @property
    def n_outputs(self) -> int:
        """Number of neurons this weight set drives."""
        return int(self.weights.shape[1])

    @property
    def n_weights(self) -> int:
        """Number of weight parameters (biases excluded)."""
        return int(self.weights.size)

    def weight_range(self) -> Tuple[float, float]:
        """Minimum and maximum trained weight, used to size the digit bits."""
        return float(self.weights.min()), float(self.weights.max())


@dataclass
class FullyConnectedNetwork:
    """A fully-connected classifier with sigmoid hidden layers and softmax output."""

    topology: Tuple[int, ...]
    layers: List[DenseLayer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.topology = tuple(int(n) for n in self.topology)
        if len(self.topology) < 2:
            raise ModelError("a network needs at least an input and an output layer")
        if any(width <= 0 for width in self.topology):
            raise ModelError("all layer widths must be positive")
        if self.layers:
            self._validate_layers()

    def _validate_layers(self) -> None:
        if len(self.layers) != self.n_weight_layers:
            raise ModelError(
                f"expected {self.n_weight_layers} weight layers, got {len(self.layers)}"
            )
        for j, layer in enumerate(self.layers):
            expected = (self.topology[j], self.topology[j + 1])
            if layer.weights.shape != expected:
                raise ModelError(
                    f"layer {j} weights shaped {layer.weights.shape}, expected {expected}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls, topology: Sequence[int] = PAPER_TOPOLOGY, seed: int = 0
    ) -> "FullyConnectedNetwork":
        """Random (Xavier-style) initialization of a network with this topology."""
        topology = tuple(int(n) for n in topology)
        rng = np.random.default_rng(seed)
        layers: List[DenseLayer] = []
        for j in range(len(topology) - 1):
            fan_in, fan_out = topology[j], topology[j + 1]
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            weights = rng.normal(0.0, scale, size=(fan_in, fan_out))
            biases = np.zeros(fan_out)
            layers.append(DenseLayer(index=j, weights=weights, biases=biases))
        return cls(topology=topology, layers=layers)

    # ------------------------------------------------------------------
    @property
    def n_weight_layers(self) -> int:
        """Number of weight sets (``Layer_0 .. Layer_4`` for the paper topology)."""
        return len(self.topology) - 1

    @property
    def n_weights(self) -> int:
        """Total number of weight parameters (paper: ~1.5 million)."""
        return sum(layer.n_weights for layer in self.layers)

    @property
    def n_neurons(self) -> int:
        """Total number of neurons across all layers (paper: 2714)."""
        return sum(self.topology)

    def layer(self, index: int) -> DenseLayer:
        """Weight set ``Layer_index``."""
        if not 0 <= index < self.n_weight_layers:
            raise ModelError(f"layer index {index} out of range")
        return self.layers[index]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Float forward pass returning softmax class probabilities."""
        activations = np.asarray(inputs, dtype=float)
        if activations.ndim == 1:
            activations = activations[None, :]
        if activations.shape[1] != self.topology[0]:
            raise ModelError(
                f"input width {activations.shape[1]} does not match topology input "
                f"{self.topology[0]}"
            )
        for j, layer in enumerate(self.layers):
            pre = activations @ layer.weights + layer.biases
            if j == self.n_weight_layers - 1:
                activations = softmax(pre)
            else:
                activations = logsig(pre)
        return activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class index per input row."""
        return self.forward(inputs).argmax(axis=1)

    def copy(self) -> "FullyConnectedNetwork":
        """Deep copy (used before fault injection so the clean model survives)."""
        layers = [
            DenseLayer(index=l.index, weights=l.weights.copy(), biases=l.biases.copy())
            for l in self.layers
        ]
        return FullyConnectedNetwork(topology=self.topology, layers=layers)

    def summary(self) -> Dict[str, object]:
        """Table III-style description of the network."""
        return {
            "type": "Fully-Connected Classifier",
            "topology": self.topology,
            "n_layers": len(self.topology),
            "n_neurons": self.n_neurons,
            "n_weights": self.n_weights,
            "activation": "Logarithmic Sigmoid (logsig)",
            "output": "softmax",
        }
